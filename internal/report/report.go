// Package report computes the per-benchmark statistics reported in the
// paper's evaluation (§6): program characteristics (Table 2), resolution of
// indirect references (Table 3), categorization of the points-to pairs they
// use (Table 4), program-point pair totals (Table 5) and invocation graph
// measurements (Table 6).
package report

import (
	"repro/internal/cc/ast"
	"repro/internal/pta"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// RefFamilyCounts classifies indirect references by the number of stack
// locations the dereferenced pointer can point to (Table 3, columns 1–4+).
type RefFamilyCounts struct {
	OneD     int // definitely a single stack location
	OneP     int // possibly a single stack location (the other being NULL)
	Two      int
	Three    int
	FourPlus int
}

func (c RefFamilyCounts) total() int { return c.OneD + c.OneP + c.Two + c.Three + c.FourPlus }

// IndirectStats is Table 3 for one benchmark. Norm covers *x and (*x).y.z
// references; Arr covers x[i][j] references through a pointer to an array.
type IndirectStats struct {
	Norm, Arr RefFamilyCounts
	IndRefs   int // total indirect references
	ScalarRep int // replaceable by a direct reference via definite info
	ToStack   int // points-to pairs used, target on the stack
	ToHeap    int // points-to pairs used, target in the heap
}

// Tot returns the total pairs used by indirect references.
func (s IndirectStats) Tot() int { return s.ToStack + s.ToHeap }

// Avg returns the average number of pairs per indirect reference.
func (s IndirectStats) Avg() float64 {
	if s.IndRefs == 0 {
		return 0
	}
	return float64(s.Tot()) / float64(s.IndRefs)
}

// Categ is one From/To categorization row of Table 4: pairs used by
// indirect references whose target is on the stack, classified by the kind
// of abstract location at each end.
type Categ struct {
	Local, Global, Formal, Symbolic int
}

// CategStats is Table 4 for one benchmark.
type CategStats struct {
	From, To Categ
}

// PairStats is Table 5 for one benchmark: points-to pairs summed over every
// basic statement of the simplified program, classified by the memory areas
// of source and target.
type PairStats struct {
	StackToStack int
	StackToHeap  int
	HeapToHeap   int
	HeapToStack  int
	Stmts        int
	MaxPerStmt   int
}

// Total returns the total program-point pairs.
func (p PairStats) Total() int {
	return p.StackToStack + p.StackToHeap + p.HeapToHeap + p.HeapToStack
}

// Avg returns the average pairs per statement.
func (p PairStats) Avg() float64 {
	if p.Stmts == 0 {
		return 0
	}
	return float64(p.Total()) / float64(p.Stmts)
}

// BenchStats aggregates every table's data for one benchmark.
type BenchStats struct {
	Name        string
	Description string

	// Table 2.
	Lines       int
	SimpleStmts int
	MinVars     int
	MaxVars     int

	Indirect IndirectStats  // Table 3
	Categ    CategStats     // Table 4
	Pairs    PairStats      // Table 5
	IG       invgraph.Stats // Table 6
}

// Compute derives all statistics from an analysis result.
func Compute(name string, res *pta.Result) *BenchStats {
	bs := &BenchStats{
		Name:        name,
		Lines:       res.Prog.SourceLines,
		SimpleStmts: res.Prog.NumBasicStmts,
		IG:          res.Graph.ComputeStats(),
	}
	computeVarCounts(bs, res)
	computeIndirect(bs, res)
	computePairs(bs, res)
	return bs
}

// computeVarCounts fills the Table 2 min/max abstract-stack variable counts:
// for each function, the number of abstract locations in its scope (globals,
// parameters, locals including temporaries, and the symbolic variables the
// analysis created for it).
func computeVarCounts(bs *BenchStats, res *pta.Result) {
	globalCount := 0
	for _, g := range res.Prog.Globals {
		globalCount += len(loc.AllPaths(g.Type))
	}
	bs.MinVars, bs.MaxVars = -1, 0
	for _, f := range res.Prog.Functions {
		n := globalCount
		for _, p := range f.Params {
			n += len(loc.AllPaths(p.Type))
		}
		for _, l := range f.Locals {
			n += len(loc.AllPaths(l.Type))
		}
		n += res.Table.SymCount(f)
		if bs.MinVars < 0 || n < bs.MinVars {
			bs.MinVars = n
		}
		if n > bs.MaxVars {
			bs.MaxVars = n
		}
	}
	if bs.MinVars < 0 {
		bs.MinVars = 0
	}
}

// category classifies a location for Table 4.
func category(l *loc.Location) int {
	switch l.Kind {
	case loc.Symbolic:
		return 3
	case loc.Var:
		switch {
		case l.Obj.Global:
			return 1
		case l.Obj.Kind == ast.Param:
			return 2
		default:
			return 0
		}
	}
	return 0
}

func addCateg(c *Categ, which int) {
	switch which {
	case 0:
		c.Local++
	case 1:
		c.Global++
	case 2:
		c.Formal++
	case 3:
		c.Symbolic++
	}
}

// computeIndirect fills Tables 3 and 4 by classifying every textual indirect
// reference of the program under the merged program-point annotation.
func computeIndirect(bs *BenchStats, res *pta.Result) {
	seen := make(map[*simple.Basic]bool)
	res.Prog.ForEachBasic(func(b *simple.Basic) {
		if seen[b] {
			return
		}
		seen[b] = true
		in, ok := res.Annots.At(b)
		if !ok {
			return // unreachable statement
		}
		for _, r := range b.Refs() {
			if !r.Deref {
				continue
			}
			bs.classifyIndirectRef(res, r, in)
		}
	})
}

// classifyIndirectRef classifies one indirect reference. The dereferenced
// pointer is the named location of (Var, Path); its points-to pairs in the
// merged annotation drive Tables 3 and 4.
func (bs *BenchStats) classifyIndirectRef(res *pta.Result, r *simple.Ref, in ptset.Set) {
	bs.Indirect.IndRefs++

	// The base locations of the dereferenced pointer.
	baseLocs := pta.EvalBaseLocs(res, r)
	var (
		nNull, nStack, nHeap int
		definite             bool
		soleTarget           *loc.Location
	)
	targetSeen := make(map[*loc.Location]bool)
	for _, bl := range baseLocs {
		for _, t := range in.Targets(bl.Loc) {
			if t.Dst.Kind == loc.Null {
				nNull++
				continue
			}
			if targetSeen[t.Dst] {
				continue
			}
			targetSeen[t.Dst] = true
			if t.Dst.Kind == loc.Heap {
				nHeap++
			} else {
				nStack++
			}
			soleTarget = t.Dst
			if t.Def == ptset.D && bl.Def == ptset.D && len(baseLocs) == 1 {
				definite = true
			}
			// Table 4 categorization, stack targets only.
			if t.Dst.Kind != loc.Heap {
				addCateg(&bs.Categ.From, category(bl.Loc))
				addCateg(&bs.Categ.To, category(t.Dst))
			}
		}
	}
	nTargets := nStack + nHeap
	bs.Indirect.ToStack += nStack
	bs.Indirect.ToHeap += nHeap

	// Family: x[i][j]-style references are dereferences whose pointee is
	// further indexed (a pointer to an array).
	fam := &bs.Indirect.Norm
	for _, s := range r.DPath {
		if s.Kind == simple.SelIndex {
			fam = &bs.Indirect.Arr
			break
		}
	}
	switch {
	case nTargets == 1 && definite && nNull == 0:
		fam.OneD++
		// Replaceable by a direct reference unless the target is
		// invisible (symbolic), in the heap, or stands for several
		// locations (array tail).
		if soleTarget.Kind == loc.Var && !soleTarget.Multi() {
			bs.Indirect.ScalarRep++
		}
	case nTargets == 1:
		fam.OneP++
	case nTargets == 2:
		fam.Two++
	case nTargets == 3:
		fam.Three++
	case nTargets >= 4:
		fam.FourPlus++
	default:
		// No known target (unreachable pointer): count as possibly-one.
		fam.OneP++
	}
}

// computePairs fills Table 5 by summing the points-to pairs valid at every
// basic statement (NULL-initialization pairs excluded, as in the paper).
func computePairs(bs *BenchStats, res *pta.Result) {
	seen := make(map[*simple.Basic]bool)
	res.Prog.ForEachBasic(func(b *simple.Basic) {
		if seen[b] || b.Kind == simple.StmtNop {
			return
		}
		seen[b] = true
		in, ok := res.Annots.At(b)
		if !ok {
			return
		}
		bs.Pairs.Stmts++
		n := 0
		for _, t := range in.Triples() {
			if t.Dst.Kind == loc.Null {
				continue
			}
			n++
			srcHeap := t.Src.Kind == loc.Heap
			dstHeap := t.Dst.Kind == loc.Heap
			switch {
			case srcHeap && dstHeap:
				bs.Pairs.HeapToHeap++
			case srcHeap:
				bs.Pairs.HeapToStack++
			case dstHeap:
				bs.Pairs.StackToHeap++
			default:
				bs.Pairs.StackToStack++
			}
		}
		if n > bs.Pairs.MaxPerStmt {
			bs.Pairs.MaxPerStmt = n
		}
	})
}
