package report

import (
	"strings"
	"testing"

	"repro/internal/cc/parser"
	"repro/internal/pta"
	"repro/internal/simplify"
)

func computeFor(t *testing.T, src string) *BenchStats {
	t.Helper()
	tu, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	res, err := pta.Analyze(prog, pta.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return Compute("test", res)
}

func TestIndirectClassification(t *testing.T) {
	bs := computeFor(t, `
int main() {
	int x, y, c;
	int *pd, *pp2;
	pd = &x;
	c = *pd;         /* 1 definite target */
	if (c)
		pp2 = &x;
	else
		pp2 = &y;
	c = *pp2;        /* 2 possible targets */
	return c;
}
`)
	in := bs.Indirect
	if in.Norm.OneD != 1 {
		t.Errorf("OneD = %d, want 1", in.Norm.OneD)
	}
	if in.Norm.Two != 1 {
		t.Errorf("Two = %d, want 1", in.Norm.Two)
	}
	if in.IndRefs != 2 {
		t.Errorf("IndRefs = %d, want 2", in.IndRefs)
	}
	if in.ScalarRep != 1 {
		t.Errorf("ScalarRep = %d, want 1 (only the definite ref)", in.ScalarRep)
	}
	if in.ToStack != 3 {
		t.Errorf("ToStack = %d, want 3 pairs", in.ToStack)
	}
	if in.ToHeap != 0 {
		t.Errorf("ToHeap = %d, want 0", in.ToHeap)
	}
}

func TestOnePossibleWithNull(t *testing.T) {
	bs := computeFor(t, `
int main() {
	int x, c;
	int *p;
	p = 0;
	if (c)
		p = &x;
	if (p)
		c = *p;     /* possibly x, possibly NULL: the 1P column */
	return c;
}
`)
	if bs.Indirect.Norm.OneP != 1 {
		t.Errorf("OneP = %d, want 1", bs.Indirect.Norm.OneP)
	}
}

func TestHeapPairCounting(t *testing.T) {
	bs := computeFor(t, `
struct n { struct n *next; };
int main() {
	struct n *p, *q;
	p = (struct n *) malloc(8);
	q = (struct n *) malloc(8);
	p->next = q;       /* indirect store through heap pointer */
	q = p->next;       /* indirect load */
	return 0;
}
`)
	if bs.Indirect.ToHeap == 0 {
		t.Error("heap-targeted indirect references should be counted")
	}
	if bs.Pairs.StackToHeap == 0 {
		t.Error("stack->heap pairs should be counted in Table 5")
	}
	if bs.Pairs.HeapToHeap == 0 {
		t.Error("heap->heap pairs should be counted in Table 5")
	}
	if bs.Pairs.HeapToStack != 0 {
		t.Error("no heap->stack pairs exist in this program")
	}
}

func TestArrayFamilyClassification(t *testing.T) {
	bs := computeFor(t, `
void fill(double *v, int n) {
	int i;
	for (i = 0; i < n; i++)
		v[i] = 1.0;       /* x[i] through a pointer: the [ij] family */
}
double arr[8];
int main() {
	fill(arr, 8);
	return 0;
}
`)
	if bs.Indirect.Arr.OneD+bs.Indirect.Arr.OneP+bs.Indirect.Arr.Two == 0 {
		t.Errorf("pointer-indexed reference should fall in the array family: %+v", bs.Indirect)
	}
}

func TestCategorizationFromFormalToGlobal(t *testing.T) {
	bs := computeFor(t, `
double garr[4];
void kernel(double *v) {
	v[0] = 2.0;
}
int main() {
	kernel(garr);
	return 0;
}
`)
	if bs.Categ.From.Formal == 0 {
		t.Errorf("pairs should originate at formal parameters: %+v", bs.Categ)
	}
	if bs.Categ.To.Global == 0 {
		t.Errorf("pairs should target global locations: %+v", bs.Categ)
	}
}

func TestTable2Counts(t *testing.T) {
	bs := computeFor(t, `
int g;
void f(int *p) { *p = 1; }
int main() {
	int x;
	f(&x);
	return 0;
}
`)
	if bs.SimpleStmts == 0 {
		t.Error("SIMPLE statement count missing")
	}
	if bs.MinVars <= 0 || bs.MaxVars < bs.MinVars {
		t.Errorf("bad var counts: min=%d max=%d", bs.MinVars, bs.MaxVars)
	}
	if bs.IG.Nodes != 2 {
		t.Errorf("IG nodes = %d, want 2", bs.IG.Nodes)
	}
}

func TestTableRendering(t *testing.T) {
	bs := computeFor(t, `
int main() {
	int x;
	int *p;
	p = &x;
	x = *p;
	return x;
}
`)
	bs.Description = "tiny"
	var sb strings.Builder
	WriteAll(&sb, []*BenchStats{bs})
	out := sb.String()
	for _, want := range []string{"Table 2", "Table 3", "Table 4", "Table 5", "Table 6", "test", "tiny"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q", want)
		}
	}
}
