package report

import (
	"fmt"
	"io"
	"strings"
)

// table is a tiny aligned-text table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// WriteTable2 renders the benchmark characteristics table.
func WriteTable2(w io.Writer, all []*BenchStats) {
	fmt.Fprintln(w, "Table 2: Characteristics of Benchmark Programs")
	t := &table{header: []string{"Benchmark", "Lines", "#SIMPLE", "MinVar", "MaxVar", "Description"}}
	for _, b := range all {
		t.add(b.Name, itoa(b.Lines), itoa(b.SimpleStmts), itoa(b.MinVars), itoa(b.MaxVars), b.Description)
	}
	t.write(w)
}

// WriteTable3 renders the indirect-reference resolution table. As in the
// paper, multi-entry columns show the *x / (*x).f family first and the
// x[i][j] (pointer-to-array) family second.
func WriteTable3(w io.Writer, all []*BenchStats) {
	fmt.Fprintln(w, "Table 3: Points-to Statistics for Indirect References")
	t := &table{header: []string{"Benchmark",
		"1D", "1D[ij]", "1P", "1P[ij]", "2P", "2P[ij]", "3P", "3P[ij]", ">=4", ">=4[ij]",
		"indrefs", "ScalarRep", "ToStack", "ToHeap", "Tot", "Avg"}}
	for _, b := range all {
		in := b.Indirect
		t.add(b.Name,
			itoa(in.Norm.OneD), itoa(in.Arr.OneD),
			itoa(in.Norm.OneP), itoa(in.Arr.OneP),
			itoa(in.Norm.Two), itoa(in.Arr.Two),
			itoa(in.Norm.Three), itoa(in.Arr.Three),
			itoa(in.Norm.FourPlus), itoa(in.Arr.FourPlus),
			itoa(in.IndRefs), itoa(in.ScalarRep),
			itoa(in.ToStack), itoa(in.ToHeap), itoa(in.Tot()), f2(in.Avg()))
	}
	t.write(w)
}

// WriteTable4 renders the From/To categorization of points-to pairs used by
// indirect references (stack targets only).
func WriteTable4(w io.Writer, all []*BenchStats) {
	fmt.Fprintln(w, "Table 4: Categorization of Points-to Information Used by Indirect References")
	t := &table{header: []string{"Benchmark",
		"From:lo", "From:gl", "From:fp", "From:sy",
		"To:lo", "To:gl", "To:fp", "To:sy"}}
	for _, b := range all {
		c := b.Categ
		t.add(b.Name,
			itoa(c.From.Local), itoa(c.From.Global), itoa(c.From.Formal), itoa(c.From.Symbolic),
			itoa(c.To.Local), itoa(c.To.Global), itoa(c.To.Formal), itoa(c.To.Symbolic))
	}
	t.write(w)
}

// WriteTable5 renders the general program-point points-to statistics.
func WriteTable5(w io.Writer, all []*BenchStats) {
	fmt.Fprintln(w, "Table 5: General Points-to Statistics")
	t := &table{header: []string{"Benchmark",
		"Stack->Stack", "Stack->Heap", "Heap->Heap", "Heap->Stack", "Avg", "Max/stmt"}}
	for _, b := range all {
		p := b.Pairs
		t.add(b.Name, itoa(p.StackToStack), itoa(p.StackToHeap),
			itoa(p.HeapToHeap), itoa(p.HeapToStack),
			f2(p.Avg()), itoa(p.MaxPerStmt))
	}
	t.write(w)
}

// WriteTable6 renders the invocation graph statistics.
func WriteTable6(w io.Writer, all []*BenchStats) {
	fmt.Fprintln(w, "Table 6: Invocation Graph Statistics")
	t := &table{header: []string{"Benchmark",
		"ig nodes", "call sites", "#fns", "R", "A", "Avgc", "Avgf"}}
	for _, b := range all {
		s := b.IG
		t.add(b.Name, itoa(s.Nodes), itoa(s.CallSites), itoa(s.Functions),
			itoa(s.Recursive), itoa(s.Approximate),
			f2(s.AvgPerCallSite()), f2(s.AvgPerFunction()))
	}
	t.write(w)
}

// WriteAll renders every table.
func WriteAll(w io.Writer, all []*BenchStats) {
	WriteTable2(w, all)
	fmt.Fprintln(w)
	WriteTable3(w, all)
	fmt.Fprintln(w)
	WriteTable4(w, all)
	fmt.Fprintln(w)
	WriteTable5(w, all)
	fmt.Fprintln(w)
	WriteTable6(w, all)
}
