package report

import (
	"fmt"
	"io"

	"repro/internal/taint"
)

// WriteTaintDiags renders taint diagnostics in the conventional
// file:line:col: severity: message form, one per line. Diagnostics arrive
// already sorted by position from taint.Run.
func WriteTaintDiags(w io.Writer, diags []taint.Diag) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
}

// TaintDiagCounts tallies taint diagnostics by severity.
func TaintDiagCounts(diags []taint.Diag) (errors, warnings int) {
	for _, d := range diags {
		if d.Sev == taint.Error {
			errors++
		} else {
			warnings++
		}
	}
	return errors, warnings
}

// WriteTaintDiagSummary writes a one-line closing summary.
func WriteTaintDiagSummary(w io.Writer, diags []taint.Diag) {
	errs, warns := TaintDiagCounts(diags)
	if errs == 0 && warns == 0 {
		fmt.Fprintln(w, "no taint flows found")
		return
	}
	fmt.Fprintf(w, "%s, %s\n", plural(errs, "error"), plural(warns, "warning"))
}
