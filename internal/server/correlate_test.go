package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// hogSrc builds a program whose analysis needs well over a small step
// budget: a chain of pointer-shuffling functions feeding a fn-ptr call.
const hogSrc = `
int a, b;
int *p, *q, *r;
int (*fp)();
int f1() { p = &a; q = p; r = q; return 0; }
int f2() { q = &b; p = q; r = p; return 0; }
int f3() { r = &a; fp = f1; fp(); return 0; }
int main() {
	f1();
	f2();
	f3();
	fp = f2;
	fp();
	return 0;
}
`

// TestRequestCorrelation is the acceptance scenario: a request deliberately
// killed by its step budget must be traceable end to end by its request ID —
// the JSON response, the spooled flight dump named by the ID (containing the
// request marker), and the structured access-log line referencing the dump.
func TestRequestCorrelation(t *testing.T) {
	s, logBuf, spoolDir := newTestServer(t)
	h := s.Handler()

	const reqID = "corr-test-1"
	rec, resp := post(t, h, "/v1/analyze", AnalyzeRequest{
		Filename: "hog.c",
		Source:   hogSrc,
		Config:   &RequestConfig{MaxSteps: 10, Workers: 1},
	}, map[string]string{"X-Request-ID": reqID})

	// 1. The response: 500, engine error, the ID, a flight-dump reference,
	// and a metrics snapshot for the partial run.
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500; body:\n%s", rec.Code, rec.Body.String())
	}
	if resp.RequestID != reqID {
		t.Errorf("request id = %q, want %q", resp.RequestID, reqID)
	}
	if !strings.Contains(resp.Error, "exceeded") {
		t.Errorf("error = %q, want a step-budget message", resp.Error)
	}
	wantDump := reqID + ".flight.txt"
	if resp.FlightDump != wantDump {
		t.Fatalf("flight_dump = %q, want %q", resp.FlightDump, wantDump)
	}
	if got := rec.Header().Get("X-Flight-Dump"); got != wantDump {
		t.Errorf("X-Flight-Dump header = %q, want %q", got, wantDump)
	}
	if resp.Metrics == nil || resp.Metrics.Steps == 0 {
		t.Error("killed request carried no partial metrics snapshot")
	}

	// 2. The spool: a file named by the request ID, holding the step-budget
	// cause line and the request instant marker carrying the same ID.
	dump, err := os.ReadFile(filepath.Join(spoolDir, wantDump))
	if err != nil {
		t.Fatalf("spooled dump missing: %v", err)
	}
	if !strings.Contains(string(dump), "=== flight record: steps exceeded") {
		t.Errorf("dump lacks the cause line:\n%s", dump)
	}
	if !strings.Contains(string(dump), reqID) {
		t.Errorf("dump does not carry the request id %q:\n%s", reqID, dump)
	}

	// 3. The access log: one JSON line with the same request_id, the 500,
	// and the flight_dump reference.
	var logged struct {
		RequestID  string `json:"request_id"`
		Path       string `json:"path"`
		Status     int    `json:"status"`
		FlightDump string `json:"flight_dump"`
	}
	found := false
	for _, line := range strings.Split(logBuf.String(), "\n") {
		if !strings.Contains(line, reqID) {
			continue
		}
		if err := json.Unmarshal([]byte(line), &logged); err != nil {
			t.Fatalf("access log line is not JSON: %v\n%s", err, line)
		}
		found = true
		break
	}
	if !found {
		t.Fatalf("no access-log line for %q:\n%s", reqID, logBuf.String())
	}
	if logged.Path != "/v1/analyze" || logged.Status != 500 {
		t.Errorf("access log path/status = %q/%d, want /v1/analyze/500", logged.Path, logged.Status)
	}
	if logged.FlightDump != wantDump {
		t.Errorf("access log flight_dump = %q, want %q", logged.FlightDump, wantDump)
	}
}

// TestHealthyRequestLeavesNoDump is the inverse: a request that finishes
// within budget must not leave a spool file behind.
func TestHealthyRequestLeavesNoDump(t *testing.T) {
	s, _, spoolDir := newTestServer(t)
	rec, resp := post(t, s.Handler(), "/v1/analyze", AnalyzeRequest{Source: fig6Src},
		map[string]string{"X-Request-ID": "healthy-1"})
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if resp.FlightDump != "" {
		t.Errorf("healthy request advertised a dump: %q", resp.FlightDump)
	}
	entries, err := os.ReadDir(spoolDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("unexpected spool file %q after a healthy request", e.Name())
	}
}
