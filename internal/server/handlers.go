package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/cc/ast"
	"repro/internal/cc/parser"
	"repro/internal/check"
	"repro/internal/obsv"
	"repro/internal/pta"
	"repro/internal/pta/loc"
	"repro/internal/race"
	"repro/internal/taint"
	"repro/pointsto"
)

// AnalyzeRequest is the body of POST /v1/analyze (and the /v1/check,
// /v1/race, /v1/taint views over the same run).
type AnalyzeRequest struct {
	// Filename labels positions in diagnostics (default "input.c").
	Filename string `json:"filename,omitempty"`
	// Source is the C translation unit to analyze. Required.
	Source string `json:"source"`
	// Config exposes the pointsto.Config knobs per request.
	Config *RequestConfig `json:"config,omitempty"`
}

// RequestConfig is the JSON view of the analysis knobs a caller may set.
type RequestConfig struct {
	FnPtrStrategy      string `json:"fnptr,omitempty"`
	NoDefinite         bool   `json:"no_definite,omitempty"`
	SingleArrayLoc     bool   `json:"single_array_loc,omitempty"`
	NoMemo             bool   `json:"no_memo,omitempty"`
	ContextInsensitive bool   `json:"context_insensitive,omitempty"`
	// Workers is clamped to the server's per-analysis cap.
	Workers int `json:"workers,omitempty"`
	// MaxSteps bounds the run (0 means the server default); it is clamped
	// to the server's ceiling so one request cannot hold a pool slot for an
	// unbounded fixed point.
	MaxSteps int `json:"max_steps,omitempty"`
	// StallWindowMS arms the per-request stall watchdog; with StallKill a
	// detected stall aborts the request (and spools its flight record).
	StallWindowMS int  `json:"stall_window_ms,omitempty"`
	StallKill     bool `json:"stall_kill,omitempty"`
}

// Triple is one points-to relationship in a response.
type Triple struct {
	Src      string `json:"src"`
	Dst      string `json:"dst"`
	Definite bool   `json:"definite"`
}

// Finding is one checker diagnostic in a response.
type Finding struct {
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

// TraceSummary reports the per-request tracer's ring accounting.
type TraceSummary struct {
	Spans   uint64 `json:"spans"`
	Dropped uint64 `json:"dropped"`
}

// AnalyzeResponse is the body returned by every /v1 analysis view. The
// request ID, the inline metrics snapshot and the flight-dump reference are
// the correlation surface: the same ID appears in the access log and names
// the spooled dump.
type AnalyzeResponse struct {
	RequestID   string                `json:"request_id"`
	View        string                `json:"view"`
	Filename    string                `json:"filename"`
	DurationMS  float64               `json:"duration_ms"`
	Fingerprint string                `json:"fingerprint_sha256,omitempty"`
	PointsTo    []Triple              `json:"points_to,omitempty"`
	Findings    []Finding             `json:"findings,omitempty"`
	Errors      int                   `json:"errors"`
	Warnings    int                   `json:"warnings"`
	Diagnostics []string              `json:"diagnostics,omitempty"`
	Metrics     *obsv.MetricsSnapshot `json:"metrics,omitempty"`
	Trace       *TraceSummary         `json:"trace,omitempty"`
	FlightDump  string                `json:"flight_dump,omitempty"`
	Error       string                `json:"error,omitempty"`
}

// reqTraceBuffer bounds the per-request tracer ring. One shard keeps the
// last N spans globally, which is what the flight dump renders.
const reqTraceBuffer = 2048

// handleAnalyze builds the handler for one analysis view. All four /v1
// endpoints share it: they run the same analysis, differ only in which
// client consumes the result.
func (s *Server) handleAnalyze(view string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.writeError(w, r, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req AnalyzeRequest
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		if strings.TrimSpace(req.Source) == "" {
			s.writeError(w, r, http.StatusBadRequest, "empty source")
			return
		}
		if req.Filename == "" {
			req.Filename = "input.c"
		}

		// Queue for an analysis slot; a client that disconnects while
		// queued releases its goroutine instead of analyzing for no one.
		if err := s.pool.acquire(r.Context()); err != nil {
			s.writeError(w, r, http.StatusServiceUnavailable, "canceled while queued: "+err.Error())
			return
		}
		defer s.pool.release()

		resp := s.analyze(r.Context(), view, &req)
		status := http.StatusOK
		switch {
		case resp.Error != "" && resp.Metrics == nil:
			// Failed before the engine ran: the source is at fault.
			status = http.StatusUnprocessableEntity
		case resp.Error != "":
			// The engine started and was aborted (step budget, stall kill,
			// panic): server-side condition, with a flight dump to show for it.
			status = http.StatusInternalServerError
		}
		s.writeJSON(w, r, status, resp)
	}
}

// analyze runs one request end to end with its own observability scope:
// private metrics registry, private tracer (stamped with the request ID),
// private flight recorder spooling to a file named by the request ID.
func (s *Server) analyze(ctx context.Context, view string, req *AnalyzeRequest) *AnalyzeResponse {
	id := RequestIDFrom(ctx)
	resp := &AnalyzeResponse{RequestID: id, View: view, Filename: req.Filename}
	start := time.Now()
	defer func() { resp.DurationMS = float64(time.Since(start)) / float64(time.Millisecond) }()

	// Parse first: a syntax error is the caller's problem and should not
	// consume an engine run (or leave a flight dump).
	tu, err := parser.Parse(req.Filename, req.Source)
	if err != nil {
		resp.Error = err.Error()
		return resp
	}

	reqMetrics := obsv.NewMetrics()
	tracer := obsv.NewTracer(1, reqTraceBuffer)
	// The instant marker (not a span) is recorded immediately, so a flight
	// dump taken mid-run — the only time dumps happen — already carries the
	// request identity.
	tracer.Instant(0, obsv.CatPhase, "request", id+" view="+view)
	flight := obsv.NewFlightRecorder(0, 0)
	dump := s.spool.writer(id)

	cfg := s.pool.getConfig()
	*cfg = pointsto.Config{
		Metrics:    reqMetrics,
		Tracer:     tracer,
		Flight:     flight,
		FlightDump: dump,
		MaxSteps:   s.cfg.MaxSteps,
	}
	if rc := req.Config; rc != nil {
		cfg.FnPtrStrategy = rc.FnPtrStrategy
		cfg.NoDefinite = rc.NoDefinite
		cfg.SingleArrayLoc = rc.SingleArrayLoc
		cfg.NoMemo = rc.NoMemo
		cfg.ContextInsensitive = rc.ContextInsensitive
		cfg.Workers = clampWorkers(rc.Workers, s.cfg.AnalysisWorkers)
		if rc.MaxSteps > 0 && (s.cfg.MaxSteps == 0 || rc.MaxSteps < s.cfg.MaxSteps) {
			cfg.MaxSteps = rc.MaxSteps
		}
		if rc.StallWindowMS > 0 {
			cfg.StallWindow = time.Duration(rc.StallWindowMS) * time.Millisecond
			cfg.StallKill = rc.StallKill
		}
	} else {
		cfg.Workers = clampWorkers(0, s.cfg.AnalysisWorkers)
	}
	defer s.pool.putConfig(cfg)

	a, err := s.runGuarded(tu, cfg, req.Source)

	// Whether the run finished or unwound, the per-request registry is
	// complete for what happened; snapshot it, answer with it inline, and
	// fold it into the server totals so /metrics stays monotone.
	if a != nil {
		resp.Metrics = a.Metrics() // includes interning stats the registry lacks
	} else {
		resp.Metrics = reqMetrics.Snapshot()
	}
	s.totals.Merge(resp.Metrics)
	resp.Trace = &TraceSummary{Spans: tracer.Emitted(), Dropped: tracer.Dropped()}
	if spooled, cerr := dump.close(); spooled {
		resp.FlightDump = s.spool.dumpName(id)
	} else if cerr != nil {
		s.log.Error("flight spool", "request_id", id, "err", cerr)
	}

	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	s.renderView(resp, view, a)
	return resp
}

// runGuarded executes the engine with a panic barrier: the engine dumps the
// flight record on its way out of a panic and rethrows, and a daemon must
// turn that into a failed request, not a dead process.
func (s *Server) runGuarded(tu *ast.TranslationUnit, cfg *pointsto.Config, src string) (a *pointsto.Analysis, err error) {
	defer func() {
		if r := recover(); r != nil {
			a, err = nil, fmt.Errorf("analysis panicked: %v", r)
		}
	}()
	a, err = pointsto.AnalyzeUnit(tu, cfg)
	if err != nil {
		return nil, err
	}
	// AnalyzeSource would have set this; the server parses separately so a
	// parse error skips the engine, and restores the source here for the
	// taint client's pragma scanning.
	a.Source = src
	return a, nil
}

// renderView fills the view-specific part of the response.
func (s *Server) renderView(resp *AnalyzeResponse, view string, a *pointsto.Analysis) {
	resp.Fingerprint = fingerprintSHA(a.Result)
	resp.Diagnostics = a.Diagnostics()
	switch view {
	case "analyze":
		for _, t := range a.Result.MainOut.Triples() {
			if t.Dst.Kind == loc.Null {
				continue
			}
			resp.PointsTo = append(resp.PointsTo, Triple{
				Src: t.Src.Name(), Dst: t.Dst.Name(), Definite: bool(t.Def),
			})
		}
	case "check":
		diags, err := a.Check()
		if err != nil {
			resp.Error = err.Error()
			return
		}
		for _, d := range diags {
			resp.Findings = append(resp.Findings, Finding{Severity: d.Sev.String(), Message: d.String()})
			count(resp, d.Sev == check.Error)
		}
	case "race":
		diags, err := a.Races()
		if err != nil {
			resp.Error = err.Error()
			return
		}
		for _, d := range diags {
			resp.Findings = append(resp.Findings, Finding{Severity: d.Sev.String(), Message: d.String()})
			count(resp, d.Sev == race.Error)
		}
	case "taint":
		diags, err := a.Taint()
		if err != nil {
			resp.Error = err.Error()
			return
		}
		for _, d := range diags {
			resp.Findings = append(resp.Findings, Finding{Severity: d.Sev.String(), Message: d.String()})
			count(resp, d.Sev == taint.Error)
		}
	}
}

func count(resp *AnalyzeResponse, isError bool) {
	if isError {
		resp.Errors++
	} else {
		resp.Warnings++
	}
}

// fingerprintSHA hashes the canonical result fingerprint; two analyses
// agree on every reported fact iff these digests are equal, and a digest
// travels in a JSON response where the multi-kilobyte fingerprint cannot.
func fingerprintSHA(res *pta.Result) string {
	sum := sha256.Sum256([]byte(pta.Fingerprint(res)))
	return hex.EncodeToString(sum[:])
}

func clampWorkers(requested, cap int) int {
	if cap <= 0 {
		cap = 1
	}
	if requested <= 0 || requested > cap {
		return cap
	}
	return requested
}
