package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obsv"
)

// httpMetrics is the server-level HTTP instrumentation exposed at /metrics
// alongside the aggregated analysis registry: request counts by path and
// status code, a per-path latency histogram, and the in-flight gauge. The
// same rendering rules as internal/obsv's exporter apply: cumulative
// histogram buckets derive +Inf and _count from the bucket sum, so a scrape
// racing a request stays monotone and self-consistent.
type httpMetrics struct {
	inflight atomic.Int64

	mu       sync.Mutex
	requests map[pathCode]*obsv.Counter
	duration map[string]*obsv.Histogram // path -> latency in microseconds
}

type pathCode struct {
	path string
	code int
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{
		requests: make(map[pathCode]*obsv.Counter),
		duration: make(map[string]*obsv.Histogram),
	}
}

// begin marks a request in flight; the returned func records its outcome.
func (h *httpMetrics) begin() func(path string, code int, durMicros int64) {
	h.inflight.Add(1)
	return func(path string, code int, durMicros int64) {
		h.inflight.Add(-1)
		h.mu.Lock()
		c := h.requests[pathCode{path, code}]
		if c == nil {
			c = &obsv.Counter{}
			h.requests[pathCode{path, code}] = c
		}
		d := h.duration[path]
		if d == nil {
			d = &obsv.Histogram{}
			h.duration[path] = d
		}
		h.mu.Unlock()
		c.Inc()
		d.Observe(durMicros)
	}
}

// writePrometheus renders the three server families in text exposition
// format 0.0.4.
func (h *httpMetrics) writePrometheus(w io.Writer) error {
	h.mu.Lock()
	type reqRow struct {
		pathCode
		n int64
	}
	var reqs []reqRow
	for k, c := range h.requests {
		reqs = append(reqs, reqRow{k, c.Load()})
	}
	type durRow struct {
		path string
		s    obsv.HistogramSnapshot
	}
	var durs []durRow
	for p, d := range h.duration {
		durs = append(durs, durRow{p, d.Snapshot()})
	}
	h.mu.Unlock()
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].path != reqs[j].path {
			return reqs[i].path < reqs[j].path
		}
		return reqs[i].code < reqs[j].code
	})
	sort.Slice(durs, func(i, j int) bool { return durs[i].path < durs[j].path })

	var b []byte
	app := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	app("# HELP http_requests_total HTTP requests served, by path and status code.\n")
	app("# TYPE http_requests_total counter\n")
	for _, r := range reqs {
		app("http_requests_total{path=%q,code=\"%d\"} %d\n", r.path, r.code, r.n)
	}
	app("# HELP http_request_duration_seconds HTTP request latency, by path.\n")
	app("# TYPE http_request_duration_seconds histogram\n")
	for _, d := range durs {
		var cum int64
		for _, bk := range d.s.Buckets {
			cum += bk.Count
			// Buckets hold microseconds; expose seconds.
			le := strconv.FormatFloat(float64(bk.UpperBound)/1e6, 'g', -1, 64)
			app("http_request_duration_seconds_bucket{path=%q,le=%q} %d\n", d.path, le, cum)
		}
		app("http_request_duration_seconds_bucket{path=%q,le=\"+Inf\"} %d\n", d.path, cum)
		app("http_request_duration_seconds_sum{path=%q} %s\n", d.path,
			strconv.FormatFloat(float64(d.s.Sum)/1e6, 'g', -1, 64))
		app("http_request_duration_seconds_count{path=%q} %d\n", d.path, cum)
	}
	app("# HELP inflight_requests Requests currently being served.\n")
	app("# TYPE inflight_requests gauge\n")
	app("inflight_requests %d\n", h.inflight.Load())
	_, err := w.Write(b)
	return err
}
