package server

import (
	"crypto/sha256"
	"encoding/hex"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/pta"
	"repro/pointsto"
)

// Distinct fixtures so concurrent requests have different right answers —
// any cross-request bleed shows up as a wrong fingerprint or step count.
var isolationFixtures = []struct {
	name string
	src  string
}{
	{"fig6.c", fig6Src},
	{"list.c", `
struct node { struct node *next; int v; };
struct node *head;
int push() {
	struct node *n;
	n = malloc(sizeof(struct node));
	n->next = head;
	head = n;
	return 0;
}
int main() {
	push();
	push();
	return 0;
}
`},
	{"chain.c", `
int x;
int *p1;
int **p2;
int ***p3;
int main() {
	p1 = &x;
	p2 = &p1;
	p3 = &p2;
	***p3 = 7;
	return 0;
}
`},
}

// soloBaseline runs one fixture through the library the way the CLI does
// and returns its fingerprint digest and step count at Workers=1.
func soloBaseline(t *testing.T, name, src string) (fp string, steps int64) {
	t.Helper()
	m := obsv.NewMetrics()
	a, err := pointsto.AnalyzeSource(name, src, &pointsto.Config{Workers: 1, Metrics: m})
	if err != nil {
		t.Fatalf("solo %s: %v", name, err)
	}
	sum := sha256.Sum256([]byte(pta.Fingerprint(a.Result)))
	return hex.EncodeToString(sum[:]), m.Snapshot().Steps
}

// TestConcurrentRequestIsolation fires many interleaved requests over
// different fixtures and requires every response to match its one-shot
// baseline exactly: byte-identical fingerprint and, at Workers=1, the same
// deterministic step count in the per-request metrics snapshot. Any shared
// mutable state between in-flight requests breaks one or the other.
func TestConcurrentRequestIsolation(t *testing.T) {
	type baseline struct {
		fp    string
		steps int64
	}
	baselines := make([]baseline, len(isolationFixtures))
	for i, fx := range isolationFixtures {
		fp, steps := soloBaseline(t, fx.name, fx.src)
		baselines[i] = baseline{fp, steps}
	}

	s, _, _ := newTestServer(t)
	h := s.Handler()

	const rounds = 4
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		ids = map[string]bool{}
	)
	errs := make(chan string, rounds*len(isolationFixtures))
	for round := 0; round < rounds; round++ {
		for i, fx := range isolationFixtures {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rec, resp := post(t, h, "/v1/analyze", AnalyzeRequest{
					Filename: fx.name,
					Source:   fx.src,
					Config:   &RequestConfig{Workers: 1},
				}, nil)
				if rec.Code != 200 {
					errs <- fx.name + ": status " + strconv.Itoa(rec.Code)
					return
				}
				if resp.Fingerprint != baselines[i].fp {
					errs <- fx.name + ": fingerprint diverged from one-shot baseline"
				}
				if resp.Metrics == nil || resp.Metrics.Steps != baselines[i].steps {
					errs <- fx.name + ": per-request steps bled across requests"
				}
				mu.Lock()
				if ids[resp.RequestID] {
					errs <- "duplicate request id " + resp.RequestID
				}
				ids[resp.RequestID] = true
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// scrapeSteps pulls pta_steps_total out of a /metrics exposition.
func scrapeSteps(t *testing.T, h *httptest.ResponseRecorder) uint64 {
	t.Helper()
	for _, line := range strings.Split(h.Body.String(), "\n") {
		if v, ok := strings.CutPrefix(line, "pta_steps_total "); ok {
			n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
			if err != nil {
				t.Fatalf("bad pta_steps_total %q: %v", v, err)
			}
			return n
		}
	}
	t.Fatalf("no pta_steps_total in scrape:\n%s", h.Body.String())
	return 0
}

// TestMetricsScrapeMonotoneMidFlight scrapes /metrics while analyses are in
// flight and requires the aggregated counters to only move forward —
// per-request registries must fold into the totals atomically at request
// end, never partially mid-run. Run under -race this also exercises the
// scrape/merge data paths for races.
func TestMetricsScrapeMonotoneMidFlight(t *testing.T) {
	s, _, _ := newTestServer(t)
	h := s.Handler()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				fx := isolationFixtures[w%len(isolationFixtures)]
				post(t, h, "/v1/analyze", AnalyzeRequest{Filename: fx.name, Source: fx.src}, nil)
			}
		}()
	}

	// Scrape until the totals have demonstrably advanced a few times (or a
	// deadline passes), checking monotonicity at every read.
	var last uint64
	advances := 0
	deadline := time.Now().Add(10 * time.Second)
	for (advances < 3 || last == 0) && time.Now().Before(deadline) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("/metrics = %d mid-flight", rec.Code)
		}
		cur := scrapeSteps(t, rec)
		if cur < last {
			t.Fatalf("pta_steps_total went backwards: %d -> %d", last, cur)
		}
		if cur > last {
			advances++
		}
		last = cur
	}
	close(stop)
	wg.Wait()
	if last == 0 {
		t.Error("no steps ever observed in /metrics")
	}
}
