package server

import (
	"context"
	"sync"

	"repro/pointsto"
)

// workerPool bounds how many analyses run at once. HTTP handlers block in
// acquire until a slot frees (or the client gives up), so a burst of
// submissions queues in cheap goroutines instead of oversubscribing the
// analysis core, whose own Workers knob already saturates the host per run.
//
// The pool also recycles pointsto.Config values across requests — the
// reuse path the consume-once contract on Config.Metrics/Flight/Tracer
// exists for: a recycled Config can never report into a registry that a
// previous request already accounted.
type workerPool struct {
	sem     chan struct{}
	configs sync.Pool
}

func newWorkerPool(slots int) *workerPool {
	if slots <= 0 {
		slots = 1
	}
	p := &workerPool{sem: make(chan struct{}, slots)}
	p.configs.New = func() any { return new(pointsto.Config) }
	return p
}

// acquire blocks until a slot is free or ctx is done.
func (p *workerPool) acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *workerPool) release() { <-p.sem }

// getConfig returns a recycled Config. Every field the server sets per
// request is overwritten by the caller; the consume-once attachments are
// already nil from the previous run.
func (p *workerPool) getConfig() *pointsto.Config {
	return p.configs.Get().(*pointsto.Config)
}

func (p *workerPool) putConfig(cfg *pointsto.Config) { p.configs.Put(cfg) }
