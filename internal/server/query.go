package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/cc/parser"
	"repro/internal/obsv"
	"repro/internal/simple"
	"repro/internal/simplify"
	"repro/pointsto"
)

// QueryRequest is the body of POST /v1/query: points-to queries answered by
// a demand-driven, liveness-pruned analysis run. Repeated requests over the
// same source reuse a cached parse (content-hash keyed), so an editor
// session probing one file pays the frontend once.
type QueryRequest struct {
	// Filename labels positions (default "input.c"); query positions must
	// use the same name.
	Filename string `json:"filename,omitempty"`
	// Source is the C translation unit. Required.
	Source string `json:"source"`
	// Queries is the batch to answer. Required.
	Queries []pointsto.Query `json:"queries"`
	// Exhaustive answers from a full exhaustive run instead of demand
	// mode (the correctness oracle; answers are identical by contract).
	Exhaustive bool `json:"exhaustive,omitempty"`
	// Config exposes the same knobs as /v1/analyze.
	Config *RequestConfig `json:"config,omitempty"`
}

// QueryResponse is the body returned by /v1/query.
type QueryResponse struct {
	RequestID  string  `json:"request_id"`
	Filename   string  `json:"filename"`
	DurationMS float64 `json:"duration_ms"`
	// CacheHit reports whether the parse came from the session cache.
	CacheHit bool                   `json:"cache_hit"`
	Results  []pointsto.QueryResult `json:"results,omitempty"`
	Metrics  *obsv.MetricsSnapshot  `json:"metrics,omitempty"`
	Error    string                 `json:"error,omitempty"`
}

// parseCache keeps recently parsed+simplified programs keyed by the SHA-256
// of (filename, source). Entries are evicted FIFO beyond cap. The analysis
// never mutates a *simple.Program, so one cached program can back any
// number of engine runs; the per-entry once guards the build so concurrent
// first requests for the same source parse once.
type parseCache struct {
	mu    sync.Mutex
	cap   int
	order []string
	m     map[string]*parseEntry
}

type parseEntry struct {
	once sync.Once
	prog *simple.Program
	err  error
}

func newParseCache(capacity int) *parseCache {
	if capacity <= 0 {
		capacity = 16
	}
	return &parseCache{cap: capacity, m: make(map[string]*parseEntry)}
}

// get returns the program for (filename, source), building and caching it
// on first use. hit reports whether the parse was already cached.
func (c *parseCache) get(filename, source string) (prog *simple.Program, err error, hit bool) {
	sum := sha256.Sum256([]byte(filename + "\x00" + source))
	key := hex.EncodeToString(sum[:])
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &parseEntry{}
		c.m[key] = e
		c.order = append(c.order, key)
		for len(c.order) > c.cap {
			delete(c.m, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.mu.Unlock()
	e.once.Do(func() {
		tu, perr := parser.Parse(filename, source)
		if perr != nil {
			e.err = perr
			return
		}
		e.prog, e.err = simplify.Simplify(tu)
	})
	return e.prog, e.err, ok
}

// handleQuery builds the POST /v1/query handler.
func (s *Server) handleQuery() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.writeError(w, r, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req QueryRequest
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		if strings.TrimSpace(req.Source) == "" {
			s.writeError(w, r, http.StatusBadRequest, "empty source")
			return
		}
		if len(req.Queries) == 0 {
			s.writeError(w, r, http.StatusBadRequest, "no queries")
			return
		}
		if req.Filename == "" {
			req.Filename = "input.c"
		}
		if err := s.pool.acquire(r.Context()); err != nil {
			s.writeError(w, r, http.StatusServiceUnavailable, "canceled while queued: "+err.Error())
			return
		}
		defer s.pool.release()

		resp := s.query(r, &req)
		status := http.StatusOK
		if resp.Error != "" {
			status = http.StatusUnprocessableEntity
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			s.log.Error("query response write", "request_id", resp.RequestID, "err", err)
		}
	}
}

// query runs one /v1/query request: cached parse, demand-mode analysis
// seeded by the queries, batched answers. Metrics fold into the server
// totals like every other analysis run.
func (s *Server) query(r *http.Request, req *QueryRequest) *QueryResponse {
	id := RequestIDFrom(r.Context())
	resp := &QueryResponse{RequestID: id, Filename: req.Filename}
	start := time.Now()
	defer func() { resp.DurationMS = float64(time.Since(start)) / float64(time.Millisecond) }()

	prog, err, hit := s.parses.get(req.Filename, req.Source)
	resp.CacheHit = hit
	if err != nil {
		resp.Error = err.Error()
		return resp
	}

	reqMetrics := obsv.NewMetrics()
	cfg := s.pool.getConfig()
	*cfg = pointsto.Config{
		Metrics:  reqMetrics,
		MaxSteps: s.cfg.MaxSteps,
		Demand:   !req.Exhaustive,
		Queries:  req.Queries,
	}
	if rc := req.Config; rc != nil {
		cfg.FnPtrStrategy = rc.FnPtrStrategy
		cfg.NoDefinite = rc.NoDefinite
		cfg.SingleArrayLoc = rc.SingleArrayLoc
		cfg.NoMemo = rc.NoMemo
		cfg.ContextInsensitive = rc.ContextInsensitive
		cfg.Workers = clampWorkers(rc.Workers, s.cfg.AnalysisWorkers)
		if rc.MaxSteps > 0 && (s.cfg.MaxSteps == 0 || rc.MaxSteps < s.cfg.MaxSteps) {
			cfg.MaxSteps = rc.MaxSteps
		}
	} else {
		cfg.Workers = clampWorkers(0, s.cfg.AnalysisWorkers)
	}
	defer s.pool.putConfig(cfg)

	a, err := pointsto.AnalyzeProgram(prog, cfg)
	if a != nil {
		resp.Metrics = a.Metrics()
	} else {
		resp.Metrics = reqMetrics.Snapshot()
	}
	s.totals.Merge(resp.Metrics)
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	resp.Results = a.QueryAll(req.Queries)
	return resp
}
