package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/pointsto"
)

// querySrc has a line (9) where both p and q carry facts, and a line (8)
// that stores through a global pointer.
const querySrc = `
int x, y;
int *gp;
int main() {
    int *p;
    int *q;
    p = &x;
    q = &y;
    gp = p;
    return *p + *q;
}
`

func postQuery(t *testing.T, s *Server, req QueryRequest) (int, *QueryResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/query", bytes.NewReader(body)))
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response is not JSON (%v):\n%s", err, rec.Body.String())
	}
	return rec.Code, &resp
}

func TestQueryEndpoint(t *testing.T) {
	s, _, _ := newTestServer(t)
	queries := []struct{ pos, v string }{{"q.c:9", "p"}, {"q.c:9", "q"}}
	req := QueryRequest{Filename: "q.c", Source: querySrc}
	for _, q := range queries {
		req.Queries = append(req.Queries, pointsto.Query{Pos: q.pos, Var: q.v})
	}

	code, demand := postQuery(t, s, req)
	if code != 200 {
		t.Fatalf("demand query = %d: %+v", code, demand)
	}
	if demand.CacheHit {
		t.Errorf("first request reported a cache hit")
	}
	if demand.Metrics == nil || demand.Metrics.FactsPruned == 0 {
		t.Errorf("demand run pruned nothing: %+v", demand.Metrics)
	}

	// Same source again: cached parse, exhaustive oracle, identical answers.
	req.Exhaustive = true
	code, exhaustive := postQuery(t, s, req)
	if code != 200 {
		t.Fatalf("exhaustive query = %d: %+v", code, exhaustive)
	}
	if !exhaustive.CacheHit {
		t.Errorf("second request over same source missed the parse cache")
	}
	if len(demand.Results) != len(req.Queries) || len(exhaustive.Results) != len(req.Queries) {
		t.Fatalf("results: demand %d, exhaustive %d, want %d", len(demand.Results), len(exhaustive.Results), len(req.Queries))
	}
	for i := range demand.Results {
		d, e := demand.Results[i], exhaustive.Results[i]
		if d.Err != "" || e.Err != "" {
			t.Errorf("query %d: errs %q / %q", i, d.Err, e.Err)
		}
		if fmt.Sprint(d.Targets) != fmt.Sprint(e.Targets) {
			t.Errorf("query %d: demand %v, exhaustive %v", i, d.Targets, e.Targets)
		}
		if len(d.Targets) == 0 {
			t.Errorf("query %d: no targets", i)
		}
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	s, _, _ := newTestServer(t)

	// Method, empty source, empty batch.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/query", nil))
	if rec.Code != 405 {
		t.Errorf("GET /v1/query = %d, want 405", rec.Code)
	}
	if code, _ := postQuery(t, s, QueryRequest{Source: "", Queries: []pointsto.Query{{Pos: "a.c:1", Var: "p"}}}); code != 400 {
		t.Errorf("empty source = %d, want 400", code)
	}
	if code, _ := postQuery(t, s, QueryRequest{Source: querySrc}); code != 400 {
		t.Errorf("no queries = %d, want 400", code)
	}

	// Parse failure surfaces as 422 with the error in the body.
	code, resp := postQuery(t, s, QueryRequest{Source: "int main( {", Queries: []pointsto.Query{{Pos: "input.c:1", Var: "p"}}})
	if code != 422 || resp.Error == "" {
		t.Errorf("parse failure = %d %+v, want 422 with error", code, resp)
	}

	// Unresolvable query in demand mode is a config error for the request.
	code, resp = postQuery(t, s, QueryRequest{Filename: "q.c", Source: querySrc, Queries: []pointsto.Query{{Pos: "q.c:999", Var: "p"}}})
	if code != 422 || resp.Error == "" {
		t.Errorf("bad position = %d %+v, want 422 with error", code, resp)
	}

	// In exhaustive mode a bad position is a per-query error, not a request
	// failure: the analysis itself succeeded.
	code, resp = postQuery(t, s, QueryRequest{
		Filename: "q.c", Source: querySrc, Exhaustive: true,
		Queries: []pointsto.Query{{Pos: "q.c:9", Var: "p"}, {Pos: "q.c:999", Var: "p"}},
	})
	if code != 200 {
		t.Fatalf("exhaustive mixed batch = %d: %+v", code, resp)
	}
	if resp.Results[0].Err != "" || len(resp.Results[0].Targets) == 0 {
		t.Errorf("good query failed: %+v", resp.Results[0])
	}
	if resp.Results[1].Err == "" {
		t.Errorf("bad position answered: %+v", resp.Results[1])
	}
}
