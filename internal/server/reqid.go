package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// Request IDs are the correlation spine: one ID generated (or propagated
// from the caller's X-Request-ID) per request is stamped into the access
// log, the per-request trace, the metrics snapshot response, and the name
// of any spooled flight-record dump, so one grep follows a request through
// every observability surface.

// requestIDHeader is the propagation header, in and out.
const requestIDHeader = "X-Request-ID"

type requestIDKey struct{}

// newRequestID returns a fresh 16-hex-char request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// constant rather than take the server down over an ID.
		return "00000000deadbeef"
	}
	return hex.EncodeToString(b[:])
}

// requestID extracts a usable ID from the request, generating one when the
// header is absent or unusable. Propagated IDs become file names (the
// flight-dump spool) and log fields, so anything outside a conservative
// charset or longer than 64 bytes is replaced.
func requestID(r *http.Request) string {
	id := r.Header.Get(requestIDHeader)
	if !validRequestID(id) {
		return newRequestID()
	}
	return id
}

func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// withRequestID stores the ID in the context; RequestIDFrom reads it back
// ("" when absent).
func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
