// Package server implements pta-server: the points-to analysis as a
// long-running HTTP/JSON service with a request-scoped observability spine.
//
// Every request gets its own observability scope — a generated or
// propagated X-Request-ID, a private metrics registry (returned inline in
// the response and merged into monotone server totals), a private tracer
// stamped with the request ID, and a private flight recorder whose dump is
// spooled to a file named by the request ID when the run panics, blows its
// step budget, or stalls. The access log, the trace, the metrics snapshot
// and the flight dump all carry the same ID, so one identifier follows a
// request across every surface.
//
// Server-level endpoints: POST /v1/analyze, /v1/check, /v1/race, /v1/taint
// (views over the same engine run); GET /metrics (Prometheus text:
// aggregated analysis registry plus http_requests_total,
// http_request_duration_seconds, inflight_requests); /healthz; /readyz
// (ready only after the warmup self-analysis passes); and /debug/pprof.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/obsv"
	"repro/pointsto"
)

// Config configures a Server.
type Config struct {
	// PoolSize bounds concurrent analyses (0 means GOMAXPROCS).
	PoolSize int
	// AnalysisWorkers caps the per-analysis worker count a request may ask
	// for (0 means GOMAXPROCS).
	AnalysisWorkers int
	// SpoolDir receives per-request flight-record dumps. Required.
	SpoolDir string
	// MaxSourceBytes bounds a request body (0 means 8 MiB).
	MaxSourceBytes int64
	// MaxSteps is the per-request step-budget ceiling (0 means the engine
	// default); requests may lower it but not raise it.
	MaxSteps int
	// Logger receives the access log and server events (nil means a JSON
	// logger on io.Discard).
	Logger *slog.Logger
	// WarmupSource overrides the built-in warmup program ("" = built-in).
	WarmupSource string
}

// warmupSource is a tiny program covering the paths a request exercises
// (globals, heap, a function-pointer call): if this analyzes correctly the
// server is fit to serve.
const warmupSource = `
int g;
int *p;
int (*fp)();
int set() { p = &g; return 0; }
int main() {
	fp = set;
	fp();
	return 0;
}
`

// Server is one pta-server instance. Create with New, mount Handler on any
// mux or listener, or use Start/Shutdown for the daemon lifecycle.
type Server struct {
	cfg    Config
	log    *slog.Logger
	pool   *workerPool
	spool  *spool
	parses *parseCache
	totals *obsv.Metrics
	http   *httpMetrics
	ready  atomic.Bool

	srv      *http.Server
	listener net.Listener
}

// New validates the config and builds a Server (not yet listening, not yet
// warmed up).
func New(cfg Config) (*Server, error) {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = runtime.GOMAXPROCS(0)
	}
	if cfg.AnalysisWorkers <= 0 {
		cfg.AnalysisWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSourceBytes <= 0 {
		cfg.MaxSourceBytes = 8 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	sp, err := newSpool(cfg.SpoolDir)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:    cfg,
		log:    cfg.Logger,
		pool:   newWorkerPool(cfg.PoolSize),
		spool:  sp,
		parses: newParseCache(0),
		totals: obsv.NewMetrics(),
		http:   newHTTPMetrics(),
	}, nil
}

// Handler builds the server's mux, with every route behind the request-ID +
// access-log + HTTP-metrics middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/analyze", s.handleAnalyze("analyze"))
	mux.Handle("/v1/check", s.handleAnalyze("check"))
	mux.Handle("/v1/race", s.handleAnalyze("race"))
	mux.Handle("/v1/taint", s.handleAnalyze("taint"))
	mux.Handle("/v1/query", s.handleQuery())
	// One exposition combining the aggregated analysis registry (rendered
	// by the obsv exporter) with the server's own HTTP series. The server
	// owns this mux outright — obsv.RegisterMetrics never touches a global.
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obsv.WritePrometheus(w, s.totals); err != nil {
			return
		}
		if err := s.http.writePrometheus(w); err != nil {
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s.instrument(mux)
}

// instrument is the request-scoped observability middleware: request ID in
// (propagated or generated) and out (response header, context, access log),
// HTTP metrics, and one structured access-log line per request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := requestID(r)
		r = r.WithContext(withRequestID(r.Context(), id))
		w.Header().Set(requestIDHeader, id)
		done := s.http.begin()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		dur := time.Since(start)
		done(r.URL.Path, rec.status, dur.Microseconds())
		s.log.Info("request",
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_ms", float64(dur)/float64(time.Millisecond),
			"bytes", rec.bytes,
			"flight_dump", rec.Header().Get(flightDumpHeader),
		)
	})
}

// flightDumpHeader carries the spooled dump name from the handler to the
// access-log middleware (and to the client, which also sees it in the JSON
// body).
const flightDumpHeader = "X-Flight-Dump"

// statusRecorder captures status and body size for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// writeJSON sends a JSON response, surfacing the flight-dump reference as a
// header so the access-log middleware can stamp it into the request line.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, resp *AnalyzeResponse) {
	if resp.FlightDump != "" {
		w.Header().Set(flightDumpHeader, resp.FlightDump)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		s.log.Error("write response", "request_id", RequestIDFrom(r.Context()), "err", err)
	}
}

// writeError sends a minimal JSON error body (no analysis was run).
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	s.writeJSON(w, r, status, &AnalyzeResponse{
		RequestID: RequestIDFrom(r.Context()),
		Error:     msg,
	})
}

// Warmup runs the self-analysis gate: the server reports ready only once
// the engine demonstrably works in this process. Errors leave the server
// up (healthz) but not ready (readyz).
func (s *Server) Warmup() error {
	src := s.cfg.WarmupSource
	if src == "" {
		src = warmupSource
	}
	cfg := &pointsto.Config{Workers: 1}
	if _, err := pointsto.AnalyzeSource("warmup.c", src, cfg); err != nil {
		return fmt.Errorf("server: warmup analysis failed: %w", err)
	}
	s.ready.Store(true)
	return nil
}

// Ready reports whether warmup has passed.
func (s *Server) Ready() bool { return s.ready.Load() }

// Start listens on addr and serves in a background goroutine, returning the
// bound address (useful with ":0"). Warmup is launched asynchronously, so
// the socket answers /healthz immediately and /readyz flips once the
// self-analysis passes.
func (s *Server) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.listener = l
	s.srv = &http.Server{Handler: s.Handler()}
	go func() {
		if err := s.srv.Serve(l); err != nil && err != http.ErrServerClosed {
			s.log.Error("serve", "err", err)
		}
	}()
	go func() {
		if err := s.Warmup(); err != nil {
			s.log.Error("warmup", "err", err)
		} else {
			s.log.Info("ready", "addr", l.Addr().String())
		}
	}()
	return l.Addr(), nil
}

// Shutdown drains in-flight requests and closes the listener; new requests
// are refused immediately, queued ones finish.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}
