package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/obsv"
)

// fixture sources used across the server tests.
const fig6Src = `
int a, b, c;
int *pa, *pb, *pc;
int (*fp)();
int foo();
int bar();
int main() {
	int cond;
	pc = &c;
	if (cond)
		fp = foo;
	else
		fp = bar;
	fp();
	return 0;
}
int foo() {
	int cond;
	pa = &a;
	if (cond)
		fp();
	return 0;
}
int bar() {
	pb = &b;
	return 0;
}
`

// syncBuffer collects the access log concurrently with requests.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// newTestServer builds a warmed-up server over a temp spool, returning the
// server, its access-log buffer, and the spool dir.
func newTestServer(t *testing.T) (*Server, *syncBuffer, string) {
	t.Helper()
	buf := &syncBuffer{}
	log, err := obsv.NewLogger(buf, obsv.LogOptions{JSON: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s, err := New(Config{SpoolDir: dir, Logger: log, PoolSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	return s, buf, dir
}

// post sends one analysis request through the handler and decodes the body.
func post(t *testing.T, h http.Handler, path string, req AnalyzeRequest, hdr map[string]string) (*httptest.ResponseRecorder, *AnalyzeResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", path, bytes.NewReader(body))
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	var resp AnalyzeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response is not JSON (%v):\n%s", err, rec.Body.String())
	}
	return rec, &resp
}

func TestHealthAndReadiness(t *testing.T) {
	buf := &syncBuffer{}
	log, _ := obsv.NewLogger(buf, obsv.LogOptions{JSON: true})
	s, err := New(Config{SpoolDir: t.TempDir(), Logger: log})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	if rec := get("/healthz"); rec.Code != 200 {
		t.Errorf("/healthz = %d, want 200", rec.Code)
	}
	if rec := get("/readyz"); rec.Code != 503 {
		t.Errorf("/readyz before warmup = %d, want 503", rec.Code)
	}
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	if rec := get("/readyz"); rec.Code != 200 {
		t.Errorf("/readyz after warmup = %d, want 200", rec.Code)
	}
	if rec := get("/debug/pprof/cmdline"); rec.Code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d, want 200", rec.Code)
	}
}

func TestAnalyzeEndpoint(t *testing.T) {
	s, logBuf, _ := newTestServer(t)
	h := s.Handler()
	rec, resp := post(t, h, "/v1/analyze", AnalyzeRequest{Filename: "fig6.c", Source: fig6Src}, nil)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.RequestID == "" {
		t.Error("no request_id in response")
	}
	if got := rec.Header().Get("X-Request-ID"); got != resp.RequestID {
		t.Errorf("header request id %q != body %q", got, resp.RequestID)
	}
	if resp.View != "analyze" || resp.Filename != "fig6.c" {
		t.Errorf("view/filename = %q/%q", resp.View, resp.Filename)
	}
	if len(resp.PointsTo) == 0 {
		t.Error("no points-to triples")
	}
	var fpTargets []string
	for _, tr := range resp.PointsTo {
		if tr.Src == "fp" {
			fpTargets = append(fpTargets, tr.Dst)
		}
	}
	if len(fpTargets) != 2 {
		t.Errorf("fp targets = %v, want foo and bar", fpTargets)
	}
	if len(resp.Fingerprint) != 64 {
		t.Errorf("fingerprint %q is not a sha256 hex digest", resp.Fingerprint)
	}
	if resp.Metrics == nil || resp.Metrics.Steps == 0 {
		t.Error("metrics snapshot missing or empty")
	}
	if resp.Trace == nil || resp.Trace.Spans == 0 {
		t.Error("trace summary missing or empty")
	}
	if resp.FlightDump != "" {
		t.Errorf("healthy request spooled a flight dump: %q", resp.FlightDump)
	}
	if !strings.Contains(logBuf.String(), resp.RequestID) {
		t.Errorf("access log does not mention request id %s:\n%s", resp.RequestID, logBuf.String())
	}
}

func TestCheckView(t *testing.T) {
	src, err := os.ReadFile("../../examples/check/uaf.c")
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := newTestServer(t)
	rec, resp := post(t, s.Handler(), "/v1/check", AnalyzeRequest{Filename: "uaf.c", Source: string(src)}, nil)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Findings) == 0 || resp.Errors == 0 {
		t.Errorf("check view found nothing on the UAF fixture: %+v", resp)
	}
	for _, f := range resp.Findings {
		if f.Severity != "error" && f.Severity != "warning" {
			t.Errorf("bad severity %q", f.Severity)
		}
	}
}

func TestRaceAndTaintViews(t *testing.T) {
	s, _, _ := newTestServer(t)
	h := s.Handler()
	for _, view := range []string{"race", "taint"} {
		rec, resp := post(t, h, "/v1/"+view, AnalyzeRequest{Source: fig6Src}, nil)
		if rec.Code != 200 {
			t.Fatalf("%s status %d: %s", view, rec.Code, rec.Body.String())
		}
		if resp.View != view {
			t.Errorf("view = %q, want %q", resp.View, view)
		}
		// fig6 has no threads and no taint: clean result, still correlated.
		if len(resp.Findings) != 0 || resp.Errors != 0 {
			t.Errorf("%s view on clean fixture: %+v", view, resp.Findings)
		}
		if resp.Metrics == nil || resp.Metrics.Steps == 0 {
			t.Errorf("%s view missing metrics", view)
		}
	}
}

func TestRequestIDPropagation(t *testing.T) {
	s, _, _ := newTestServer(t)
	h := s.Handler()
	_, resp := post(t, h, "/v1/analyze", AnalyzeRequest{Source: fig6Src},
		map[string]string{"X-Request-ID": "caller-id-42"})
	if resp.RequestID != "caller-id-42" {
		t.Errorf("propagated id lost: got %q", resp.RequestID)
	}
	// Unusable IDs (path metacharacters would name spool files) are replaced.
	_, resp = post(t, h, "/v1/analyze", AnalyzeRequest{Source: fig6Src},
		map[string]string{"X-Request-ID": "../../etc/passwd"})
	if resp.RequestID == "../../etc/passwd" || resp.RequestID == "" {
		t.Errorf("unsafe id not replaced: got %q", resp.RequestID)
	}
}

func TestBadRequests(t *testing.T) {
	s, _, _ := newTestServer(t)
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/analyze", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET = %d, want 405", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/analyze", strings.NewReader("{not json")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON = %d, want 400", rec.Code)
	}

	rec, _ = post(t, h, "/v1/analyze", AnalyzeRequest{Source: "   "}, nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty source = %d, want 400", rec.Code)
	}

	rec, resp := post(t, h, "/v1/analyze", AnalyzeRequest{Source: "int main( {"}, nil)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("parse error = %d, want 422", rec.Code)
	}
	if resp.Error == "" {
		t.Error("parse failure carried no error message")
	}

	rec, resp = post(t, h, "/v1/analyze", AnalyzeRequest{
		Source: fig6Src,
		Config: &RequestConfig{FnPtrStrategy: "psychic"},
	}, nil)
	if rec.Code != http.StatusInternalServerError && rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("bad strategy = %d, want error status", rec.Code)
	}
	if !strings.Contains(resp.Error, "psychic") {
		t.Errorf("bad strategy error = %q", resp.Error)
	}
}

func TestMetricsEndpointCombined(t *testing.T) {
	s, _, _ := newTestServer(t)
	h := s.Handler()
	if rec, _ := post(t, h, "/v1/analyze", AnalyzeRequest{Source: fig6Src}, nil); rec.Code != 200 {
		t.Fatalf("analyze failed: %d", rec.Code)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"pta_steps_total ",
		`http_requests_total{path="/v1/analyze",code="200"} 1`,
		"http_request_duration_seconds_bucket",
		// The scrape itself is in flight while the gauge renders.
		"inflight_requests 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestGracefulShutdown(t *testing.T) {
	s, _, _ := newTestServer(t)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("http://%s/healthz", addr)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(url); err == nil {
		t.Error("server still answering after Shutdown")
	}
}
