package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// The spool holds per-request flight-record dumps. The engine dumps a
// flight record when a run panics, exceeds its step budget, or stalls; for
// a server that must outlive any one request, those dumps go to files named
// by request ID instead of a shared stderr, so a dump can be found from the
// access-log line (and the response body) that references it.
type spool struct {
	dir string
}

func newSpool(dir string) (*spool, error) {
	if dir == "" {
		return nil, fmt.Errorf("server: empty spool dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: create spool dir: %w", err)
	}
	return &spool{dir: dir}, nil
}

// dumpName is the spool file name for a request ID (also the value
// surfaced in responses and access logs).
func (s *spool) dumpName(id string) string { return id + ".flight.txt" }

// path resolves a dump name inside the spool dir.
func (s *spool) path(name string) string { return filepath.Join(s.dir, name) }

// writer returns a lazy writer for the request: the spool file is created
// on first write only, so healthy requests leave no file behind.
func (s *spool) writer(id string) *lazyFile {
	return &lazyFile{path: s.path(s.dumpName(id))}
}

// lazyFile creates its file on first Write. It is handed to the engine as
// Config.FlightDump, which may write from watchdog or worker goroutines
// while the handler is still running, so writes are serialized.
type lazyFile struct {
	path string

	mu    sync.Mutex
	f     *os.File
	err   error
	wrote bool
}

func (l *lazyFile) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.f == nil {
		l.f, l.err = os.Create(l.path)
		if l.err != nil {
			return 0, l.err
		}
	}
	l.wrote = true
	return l.f.Write(p)
}

// close flushes and reports whether anything was spooled.
func (l *lazyFile) close() (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return false, l.err
	}
	err := l.f.Close()
	l.f = nil
	return l.wrote, err
}
