package simple

import (
	"fmt"
	"io"
	"strings"
)

// Fprint writes a readable rendering of the program to w.
func Fprint(w io.Writer, p *Program) {
	if p.GlobalInit != nil && len(p.GlobalInit.List) > 0 {
		fmt.Fprintln(w, "/* global initializers */")
		printSeq(w, p.GlobalInit, 0)
		fmt.Fprintln(w)
	}
	for i, f := range p.Functions {
		if i > 0 {
			fmt.Fprintln(w)
		}
		FprintFunc(w, f)
	}
}

// FprintFunc writes one function.
func FprintFunc(w io.Writer, f *Function) {
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s %s", p.Type, p.Name)
	}
	fmt.Fprintf(w, "%s %s(%s)\n{\n", f.Obj.Type.Ret, f.Name(), strings.Join(params, ", "))
	for _, l := range f.Locals {
		fmt.Fprintf(w, "    %s %s;\n", l.Type, l.Name)
	}
	printSeq(w, f.Body, 1)
	fmt.Fprintln(w, "}")
}

// String renders the program to a string.
func (p *Program) String() string {
	var sb strings.Builder
	Fprint(&sb, p)
	return sb.String()
}

func printSeq(w io.Writer, s *Seq, depth int) {
	if s == nil {
		return
	}
	for _, c := range s.List {
		printStmt(w, c, depth)
	}
}

func printStmt(w io.Writer, s Stmt, depth int) {
	ind := strings.Repeat("    ", depth)
	switch s := s.(type) {
	case *Basic:
		if s.Kind == StmtNop {
			return
		}
		fmt.Fprintf(w, "%s%s;\n", ind, s)
	case *Seq:
		printSeq(w, s, depth)
	case *If:
		fmt.Fprintf(w, "%sif (%s) {\n", ind, s.Cond)
		printSeq(w, s.Then, depth+1)
		if s.Else != nil {
			fmt.Fprintf(w, "%s} else {\n", ind)
			printSeq(w, s.Else, depth+1)
		}
		fmt.Fprintf(w, "%s}\n", ind)
	case *While:
		fmt.Fprintf(w, "%swhile (%s) {\n", ind, s.Cond)
		printSeq(w, s.Body, depth+1)
		fmt.Fprintf(w, "%s}\n", ind)
	case *DoWhile:
		fmt.Fprintf(w, "%sdo {\n", ind)
		printSeq(w, s.Body, depth+1)
		fmt.Fprintf(w, "%s} while (%s);\n", ind, s.Cond)
	case *For:
		fmt.Fprintf(w, "%sfor (...; %s; ...) {\n", ind, s.Cond)
		if s.Init != nil && len(s.Init.List) > 0 {
			fmt.Fprintf(w, "%s  /* init */\n", ind)
			printSeq(w, s.Init, depth+1)
		}
		fmt.Fprintf(w, "%s  /* body */\n", ind)
		printSeq(w, s.Body, depth+1)
		if s.Post != nil && len(s.Post.List) > 0 {
			fmt.Fprintf(w, "%s  /* post */\n", ind)
			printSeq(w, s.Post, depth+1)
		}
		fmt.Fprintf(w, "%s}\n", ind)
	case *Switch:
		fmt.Fprintf(w, "%sswitch (%s) {\n", ind, s.Tag)
		for _, c := range s.Cases {
			if c.IsDefault {
				fmt.Fprintf(w, "%sdefault:\n", ind)
			} else {
				fmt.Fprintf(w, "%scase %v:\n", ind, c.Vals)
			}
			printSeq(w, c.Body, depth+1)
		}
		fmt.Fprintf(w, "%s}\n", ind)
	case *Break, *Continue, *Return:
		fmt.Fprintf(w, "%s%s;\n", ind, s)
	}
}
