// Package simple defines the SIMPLE intermediate representation: the
// structured, compositional IR of the McCAT compiler that the points-to
// analysis runs on (paper §2).
//
// After simplification every *basic* statement has at most one level of
// pointer indirection per variable reference, call arguments are constants
// or variable names, and conditions are side-effect-free comparisons of
// simple operands. Control flow appears only as the compositional
// statements If, While, DoWhile, For and Switch (plus Break/Continue/Return)
// — unstructured gotos are eliminated by the structurer before
// simplification.
package simple

import (
	"fmt"
	"strings"

	"repro/internal/cc/ast"
	"repro/internal/cc/token"
	"repro/internal/cc/types"
)

// ---------------------------------------------------------------------------
// References

// IdxClass classifies an array subscript for the two-location array
// abstraction of the paper (§3.2): a[0] maps to a_head, a[k] with constant
// k>0 maps to a_tail, and a[i] with statically unknown i maps to both.
type IdxClass int

// Index classes.
const (
	IdxZero IdxClass = iota // constant index 0
	IdxPos                  // constant index > 0
	IdxAny                  // statically unknown index
)

func (c IdxClass) String() string {
	switch c {
	case IdxZero:
		return "[0]"
	case IdxPos:
		return "[k]"
	case IdxAny:
		return "[i]"
	}
	return "[?]"
}

// SelKind discriminates Sel.
type SelKind int

// Selector kinds.
const (
	SelField SelKind = iota
	SelIndex
)

// Sel is one selector applied to a location: a struct/union field or an
// array subscript (classified).
type Sel struct {
	Kind  SelKind
	Name  string   // SelField
	Index IdxClass // SelIndex

	// Opnd is the concrete subscript operand for SelIndex selectors. The
	// points-to analysis ignores it (it works on the Index class); the
	// concrete interpreter used as a soundness oracle evaluates it. It is
	// nil in selectors synthesized for whole-array operations (aggregate
	// copies, return-value plumbing), where IdxZero means element 0 and
	// IdxPos means every element beyond it.
	Opnd Operand
}

// FieldSel returns a field selector.
func FieldSel(name string) Sel { return Sel{Kind: SelField, Name: name} }

// IndexSel returns an index selector.
func IndexSel(c IdxClass) Sel { return Sel{Kind: SelIndex, Index: c} }

// IndexSelOp returns an index selector carrying its concrete operand.
func IndexSelOp(c IdxClass, op Operand) Sel { return Sel{Kind: SelIndex, Index: c, Opnd: op} }

func (s Sel) String() string {
	if s.Kind == SelField {
		return "." + s.Name
	}
	return s.Index.String()
}

// Ref is a variable reference in a basic statement. It names an abstract
// location chain with at most one level of indirection:
//
//	x, x.f, x.a[i]          Deref == false, Path selectors on the variable
//	*x, (*x).f, (*x)[i]     Deref == true, DPath selectors on the pointee
//	*(x.f)                  Deref == true with Path == [.f]
type Ref struct {
	Var   *ast.Object
	Path  []Sel // selectors applied to the variable itself
	Deref bool  // one level of indirection through the location Var.Path
	DPath []Sel // selectors applied to the pointee (only if Deref)
	Pos   token.Pos
}

// VarRef returns a plain variable reference.
func VarRef(v *ast.Object, pos token.Pos) *Ref { return &Ref{Var: v, Pos: pos} }

// IsIndirect reports whether the reference goes through a pointer.
func (r *Ref) IsIndirect() bool { return r.Deref }

// HasIndex reports whether any selector is an array index.
func (r *Ref) HasIndex() bool {
	for _, s := range r.Path {
		if s.Kind == SelIndex {
			return true
		}
	}
	for _, s := range r.DPath {
		if s.Kind == SelIndex {
			return true
		}
	}
	return false
}

// Type computes the C type of the referenced value.
func (r *Ref) Type() *types.Type {
	t := r.Var.Type
	t = applySels(t, r.Path)
	if r.Deref {
		if t != nil {
			d := t.Decay()
			if d.Kind == types.Pointer {
				t = d.Elem
			}
		}
		t = applySels(t, r.DPath)
	}
	return t
}

func applySels(t *types.Type, sels []Sel) *types.Type {
	for _, s := range sels {
		if t == nil {
			return nil
		}
		switch s.Kind {
		case SelField:
			f := t.FieldByName(s.Name)
			if f == nil {
				return nil
			}
			t = f.Type
		case SelIndex:
			// Indexing an array descends to the element type; indexing a
			// non-array pointee ((*p)[i] where p points into an array of
			// T) merely re-positions within that array, leaving type T.
			if t.Kind == types.Array {
				t = t.Elem
			}
		}
	}
	return t
}

func (r *Ref) String() string {
	var sb strings.Builder
	base := r.Var.Name
	for _, s := range r.Path {
		base += s.String()
	}
	if !r.Deref {
		return base
	}
	if len(r.Path) > 0 {
		base = "(" + base + ")"
	}
	sb.WriteString("*" + base)
	if len(r.DPath) > 0 {
		inner := sb.String()
		sb.Reset()
		sb.WriteString("(" + inner + ")")
		for _, s := range r.DPath {
			sb.WriteString(s.String())
		}
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Operands and values

// Operand is a simple operand: a reference or a constant.
type Operand interface {
	operand()
	String() string
}

// ConstInt is an integer constant operand.
type ConstInt struct{ Val int64 }

// ConstFloat is a floating constant operand.
type ConstFloat struct{ Val float64 }

// ConstString is a string-literal operand.
type ConstString struct{ Val string }

// ConstNull is the null pointer constant.
type ConstNull struct{}

func (*ConstInt) operand()    {}
func (*ConstFloat) operand()  {}
func (*ConstString) operand() {}
func (*ConstNull) operand()   {}
func (*Ref) operand()         {}

func (c *ConstInt) String() string    { return fmt.Sprintf("%d", c.Val) }
func (c *ConstFloat) String() string  { return fmt.Sprintf("%g", c.Val) }
func (c *ConstString) String() string { return fmt.Sprintf("%q", c.Val) }
func (*ConstNull) String() string     { return "NULL" }

// ---------------------------------------------------------------------------
// Basic statements

// BasicKind discriminates basic statements.
type BasicKind int

// Basic statement kinds. Together with the LHS shapes (direct or one-level
// indirect references) these realize the 15 basic statement forms of SIMPLE.
const (
	AsgnCopy    BasicKind = iota // lhs = opnd
	AsgnAddr                     // lhs = &ref
	AsgnUnary                    // lhs = op opnd
	AsgnBinary                   // lhs = opnd op opnd
	AsgnMalloc                   // lhs = malloc(opnd)   (also calloc/realloc)
	AsgnCall                     // [lhs =] f(opnds)
	AsgnCallInd                  // [lhs =] (*fp)(opnds)
	StmtNop                      // no effect (kept for positions)
)

// Basic is a basic (non-compositional) statement.
type Basic struct {
	ID   int // unique within the program; assigned by the simplifier
	Kind BasicKind
	Pos  token.Pos

	LHS *Ref // nil for value-discarding calls and StmtNop

	// Operands by kind:
	//   AsgnCopy:   X
	//   AsgnAddr:   Addr
	//   AsgnUnary:  Op, X
	//   AsgnBinary: Op, X, Y
	//   AsgnMalloc: X (size)
	//   AsgnCall:   Callee, Args
	//   AsgnCallInd: FnPtr, Args
	X, Y   Operand
	Op     token.Kind
	Addr   *Ref
	Callee *ast.Object // direct call target (FuncObj)
	FnPtr  *ast.Object // the scalar function-pointer variable
	Args   []Operand
}

func (b *Basic) stmtNode() {}

// Pos returns the statement's source position.
func (b *Basic) Position() token.Pos { return b.Pos }

func (b *Basic) String() string {
	lhs := ""
	if b.LHS != nil {
		lhs = b.LHS.String() + " = "
	}
	switch b.Kind {
	case AsgnCopy:
		return lhs + b.X.String()
	case AsgnAddr:
		return lhs + "&" + b.Addr.String()
	case AsgnUnary:
		return lhs + b.Op.String() + b.X.String()
	case AsgnBinary:
		return fmt.Sprintf("%s%s %s %s", lhs, b.X, b.Op, b.Y)
	case AsgnMalloc:
		return fmt.Sprintf("%smalloc(%s)", lhs, b.X)
	case AsgnCall:
		return fmt.Sprintf("%s%s(%s)", lhs, b.Callee.Name, operandList(b.Args))
	case AsgnCallInd:
		return fmt.Sprintf("%s(*%s)(%s)", lhs, b.FnPtr.Name, operandList(b.Args))
	case StmtNop:
		return "nop"
	}
	return "?"
}

func operandList(args []Operand) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// ---------------------------------------------------------------------------
// Compositional statements

// Stmt is a SIMPLE statement, basic or compositional.
type Stmt interface {
	stmtNode()
	Position() token.Pos
	String() string
}

// Seq is a statement sequence (block).
type Seq struct {
	List []Stmt
	Pos  token.Pos
}

// Cond is a simplified, side-effect-free condition: a comparison of two
// simple operands, or a truth test of one (Y == nil, Op == ILLEGAL).
type Cond struct {
	X  Operand
	Op token.Kind // relational operator, or ILLEGAL for truth test
	Y  Operand
}

func (c *Cond) String() string {
	if c == nil {
		return "1"
	}
	if c.Y == nil {
		return c.X.String()
	}
	return fmt.Sprintf("%s %s %s", c.X, c.Op, c.Y)
}

// If is the compositional conditional.
type If struct {
	Cond       *Cond
	Then, Else *Seq // Else may be nil
	Pos        token.Pos
}

// While is the compositional while loop. Complex conditions are simplified
// by the McCAT approach: side-effect statements needed to evaluate the
// condition are hoisted into CondEval, which executes before each test:
//
//	CondEval; while (Cond) { Body; CondEval }
type While struct {
	CondEval *Seq // may be empty
	Cond     *Cond
	Body     *Seq
	Pos      token.Pos
}

// DoWhile is the compositional do-while loop:
//
//	do { Body; CondEval } while (Cond)
type DoWhile struct {
	Body     *Seq
	CondEval *Seq // may be empty
	Cond     *Cond
	Pos      token.Pos
}

// For is the compositional for loop; Init and Post are statement sequences
// hoisted by the simplifier, Cond may be nil (infinite loop):
//
//	Init; CondEval; while (Cond) { Body; Post; CondEval }
//
// `continue` inside Body jumps to Post.
type For struct {
	Init     *Seq // may be empty
	CondEval *Seq // may be empty
	Cond     *Cond
	Post     *Seq // may be empty; `continue` jumps here
	Body     *Seq
	Pos      token.Pos
}

// SwitchCase is one arm of a Switch; fallthrough semantics are preserved.
type SwitchCase struct {
	Vals      []int64
	IsDefault bool
	Body      *Seq
}

// Switch is the compositional switch.
type Switch struct {
	Tag   Operand
	Cases []*SwitchCase
	Pos   token.Pos
}

// Break exits the innermost loop or switch.
type Break struct{ Pos token.Pos }

// Continue re-enters the innermost loop.
type Continue struct{ Pos token.Pos }

// Return exits the function; X is nil for void returns and is always a
// simple operand.
type Return struct {
	X   Operand
	Pos token.Pos
}

func (*Seq) stmtNode()      {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*DoWhile) stmtNode()  {}
func (*For) stmtNode()      {}
func (*Switch) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Return) stmtNode()   {}

// Position implementations.
func (s *Seq) Position() token.Pos      { return s.Pos }
func (s *If) Position() token.Pos       { return s.Pos }
func (s *While) Position() token.Pos    { return s.Pos }
func (s *DoWhile) Position() token.Pos  { return s.Pos }
func (s *For) Position() token.Pos      { return s.Pos }
func (s *Switch) Position() token.Pos   { return s.Pos }
func (s *Break) Position() token.Pos    { return s.Pos }
func (s *Continue) Position() token.Pos { return s.Pos }
func (s *Return) Position() token.Pos   { return s.Pos }

func (s *Seq) String() string      { return "{...}" }
func (s *If) String() string       { return "if (" + s.Cond.String() + ") ..." }
func (s *While) String() string    { return "while (" + s.Cond.String() + ") ..." }
func (s *DoWhile) String() string  { return "do ... while (" + s.Cond.String() + ")" }
func (s *For) String() string      { return "for (...) ..." }
func (s *Switch) String() string   { return "switch (" + s.Tag.String() + ") ..." }
func (s *Break) String() string    { return "break" }
func (s *Continue) String() string { return "continue" }
func (s *Return) String() string {
	if s.X == nil {
		return "return"
	}
	return "return " + s.X.String()
}

// ---------------------------------------------------------------------------
// Functions and programs

// Function is one simplified function.
type Function struct {
	Obj    *ast.Object
	Params []*ast.Object
	Locals []*ast.Object // includes simplifier temporaries
	Body   *Seq
	Pos    token.Pos

	// RetVal is a pseudo-variable that receives the function's return
	// value; the simplifier emits "__retval = x" before each return of a
	// pointer-carrying value, and the interprocedural unmap step copies
	// its points-to relationships to the call-site LHS. Nil when the
	// function never returns pointer-carrying data.
	RetVal *ast.Object
}

// Name returns the function's name.
func (f *Function) Name() string { return f.Obj.Name }

// Program is a simplified translation unit.
type Program struct {
	File    string
	Globals []*ast.Object
	// GlobalInit holds assignments synthesized from global-variable
	// initializers; the analysis evaluates them before main's body.
	GlobalInit *Seq
	Functions  []*Function
	funcByName map[string]*Function

	// NumBasicStmts and NumStmts are statement counts used by Table 2.
	NumBasicStmts int
	NumStmts      int

	SourceLines int
}

// Lookup returns the function with the given name, or nil.
func (p *Program) Lookup(name string) *Function {
	if p.funcByName == nil {
		p.funcByName = make(map[string]*Function, len(p.Functions))
		for _, f := range p.Functions {
			p.funcByName[f.Name()] = f
		}
	}
	return p.funcByName[name]
}

// Main returns the program's entry function, or nil if absent.
func (p *Program) Main() *Function { return p.Lookup("main") }

// WalkStmts visits every statement reachable from s in lexical order,
// descending into compositional statements (condition-evaluation sequences
// included).
func WalkStmts(s Stmt, f func(Stmt)) {
	switch s := s.(type) {
	case nil:
		return
	case *Basic:
		f(s)
	case *Seq:
		if s == nil {
			return
		}
		f(s)
		for _, c := range s.List {
			WalkStmts(c, f)
		}
	case *If:
		f(s)
		WalkStmts(s.Then, f)
		if s.Else != nil {
			WalkStmts(s.Else, f)
		}
	case *While:
		f(s)
		WalkStmts(s.CondEval, f)
		WalkStmts(s.Body, f)
	case *DoWhile:
		f(s)
		WalkStmts(s.Body, f)
		WalkStmts(s.CondEval, f)
	case *For:
		f(s)
		WalkStmts(s.Init, f)
		WalkStmts(s.CondEval, f)
		WalkStmts(s.Body, f)
		WalkStmts(s.Post, f)
	case *Switch:
		f(s)
		for _, c := range s.Cases {
			WalkStmts(c.Body, f)
		}
	default:
		f(s)
	}
}

// ForEachBasic visits every basic statement of the program, including the
// global initializer sequence, in lexical order.
func (p *Program) ForEachBasic(f func(*Basic)) {
	visit := func(s Stmt) {
		if b, ok := s.(*Basic); ok {
			f(b)
		}
	}
	if p.GlobalInit != nil {
		WalkStmts(p.GlobalInit, visit)
	}
	for _, fn := range p.Functions {
		WalkStmts(fn.Body, visit)
	}
}

// Refs returns the variable references appearing in a basic statement
// (left-hand side first when present).
func (b *Basic) Refs() []*Ref {
	var refs []*Ref
	add := func(op Operand) {
		if r, ok := op.(*Ref); ok && r != nil {
			refs = append(refs, r)
		}
	}
	if b.LHS != nil {
		refs = append(refs, b.LHS)
	}
	add(b.X)
	add(b.Y)
	if b.Addr != nil {
		refs = append(refs, b.Addr)
	}
	for _, a := range b.Args {
		add(a)
	}
	return refs
}

// CountStmts walks the whole program and fills in the statement counters.
func (p *Program) CountStmts() {
	p.NumBasicStmts, p.NumStmts = 0, 0
	var walk func(s Stmt)
	walk = func(s Stmt) {
		switch s := s.(type) {
		case *Basic:
			if s.Kind != StmtNop {
				p.NumBasicStmts++
				p.NumStmts++
			}
		case *Seq:
			if s == nil {
				return
			}
			for _, c := range s.List {
				walk(c)
			}
		case *If:
			p.NumStmts++
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *While:
			p.NumStmts++
			walk(s.CondEval)
			walk(s.Body)
		case *DoWhile:
			p.NumStmts++
			walk(s.Body)
			walk(s.CondEval)
		case *For:
			p.NumStmts++
			walk(s.Init)
			walk(s.CondEval)
			walk(s.Post)
			walk(s.Body)
		case *Switch:
			p.NumStmts++
			for _, c := range s.Cases {
				walk(c.Body)
			}
		case *Break, *Continue, *Return:
			p.NumStmts++
		}
	}
	for _, f := range p.Functions {
		walk(f.Body)
	}
	if p.GlobalInit != nil {
		walk(p.GlobalInit)
	}
}
