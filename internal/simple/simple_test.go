package simple

import (
	"strings"
	"testing"

	"repro/internal/cc/ast"
	"repro/internal/cc/token"
	"repro/internal/cc/types"
)

func obj(name string, t *types.Type) *ast.Object {
	return &ast.Object{Name: name, Kind: ast.Var, Type: t}
}

func TestRefString(t *testing.T) {
	x := obj("x", types.PointerTo(types.IntType))
	s := obj("s", nil)
	cases := []struct {
		ref  *Ref
		want string
	}{
		{VarRef(x, token.Pos{}), "x"},
		{&Ref{Var: x, Deref: true}, "*x"},
		{&Ref{Var: s, Path: []Sel{FieldSel("f")}}, "s.f"},
		{&Ref{Var: s, Path: []Sel{FieldSel("f")}, Deref: true}, "*(s.f)"},
		{&Ref{Var: x, Deref: true, DPath: []Sel{FieldSel("g")}}, "(*x).g"},
		{&Ref{Var: x, Path: []Sel{IndexSel(IdxZero)}}, "x[0]"},
		{&Ref{Var: x, Path: []Sel{IndexSel(IdxPos)}}, "x[k]"},
		{&Ref{Var: x, Path: []Sel{IndexSel(IdxAny)}}, "x[i]"},
		{&Ref{Var: x, Deref: true, DPath: []Sel{IndexSel(IdxAny)}}, "(*x)[i]"},
	}
	for _, c := range cases {
		if got := c.ref.String(); got != c.want {
			t.Errorf("Ref.String() = %q, want %q", got, c.want)
		}
	}
}

func TestRefType(t *testing.T) {
	st := &types.Type{Kind: types.Struct, Tag: "s", Fields: []*types.Field{
		{Name: "p", Type: types.PointerTo(types.IntType)},
	}}
	v := obj("v", st)
	r := &Ref{Var: v, Path: []Sel{FieldSel("p")}}
	if got := r.Type(); got == nil || got.Kind != types.Pointer {
		t.Errorf("v.p type = %v, want int*", got)
	}
	// *v.p has type int.
	r2 := &Ref{Var: v, Path: []Sel{FieldSel("p")}, Deref: true}
	if got := r2.Type(); got == nil || got.Kind != types.Int {
		t.Errorf("*(v.p) type = %v, want int", got)
	}
	// (*q)[i] where q points into an array of pointers keeps element type.
	q := obj("q", types.PointerTo(types.PointerTo(types.IntType)))
	r3 := &Ref{Var: q, Deref: true, DPath: []Sel{IndexSel(IdxAny)}}
	if got := r3.Type(); got == nil || got.Kind != types.Pointer {
		t.Errorf("(*q)[i] type = %v, want int* (re-positioning)", got)
	}
	// (*a)[i] where a points to an array descends to the element.
	a := obj("a", types.PointerTo(types.ArrayOf(types.IntType, 4)))
	r4 := &Ref{Var: a, Deref: true, DPath: []Sel{IndexSel(IdxAny)}}
	if got := r4.Type(); got == nil || got.Kind != types.Int {
		t.Errorf("(*a)[i] type = %v, want int (descending)", got)
	}
}

func TestBasicString(t *testing.T) {
	x := obj("x", types.IntType)
	y := obj("y", types.IntType)
	f := &ast.Object{Name: "f", Kind: ast.FuncObj}
	cases := []struct {
		b    *Basic
		want string
	}{
		{&Basic{Kind: AsgnCopy, LHS: VarRef(x, token.Pos{}), X: &ConstInt{Val: 5}}, "x = 5"},
		{&Basic{Kind: AsgnAddr, LHS: VarRef(x, token.Pos{}), Addr: VarRef(y, token.Pos{})}, "x = &y"},
		{&Basic{Kind: AsgnBinary, LHS: VarRef(x, token.Pos{}),
			X: VarRef(x, token.Pos{}), Op: token.ADD, Y: &ConstInt{Val: 1}}, "x = x + 1"},
		{&Basic{Kind: AsgnMalloc, LHS: VarRef(x, token.Pos{}), X: &ConstInt{Val: 8}}, "x = malloc(8)"},
		{&Basic{Kind: AsgnCall, Callee: f, Args: []Operand{VarRef(y, token.Pos{})}}, "f(y)"},
		{&Basic{Kind: AsgnCallInd, FnPtr: x, Args: nil}, "(*x)()"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("Basic.String() = %q, want %q", got, c.want)
		}
	}
}

func TestWalkStmtsAndRefs(t *testing.T) {
	x := obj("x", types.IntType)
	inner := &Basic{Kind: AsgnCopy, LHS: VarRef(x, token.Pos{}), X: &ConstInt{Val: 1}}
	prog := &Seq{List: []Stmt{
		&If{
			Cond: &Cond{X: VarRef(x, token.Pos{})},
			Then: &Seq{List: []Stmt{inner}},
		},
		&While{Cond: &Cond{X: &ConstInt{Val: 1}}, Body: &Seq{List: []Stmt{&Break{}}}},
	}}
	var basics, total int
	WalkStmts(prog, func(s Stmt) {
		total++
		if _, ok := s.(*Basic); ok {
			basics++
		}
	})
	if basics != 1 {
		t.Errorf("found %d basics, want 1", basics)
	}
	if total < 5 {
		t.Errorf("walk visited %d nodes, want >= 5", total)
	}
	refs := inner.Refs()
	if len(refs) != 1 || refs[0].Var != x {
		t.Errorf("Refs() = %v", refs)
	}
}

func TestCondString(t *testing.T) {
	x := obj("x", types.IntType)
	if got := (&Cond{X: VarRef(x, token.Pos{})}).String(); got != "x" {
		t.Errorf("truth-test cond = %q", got)
	}
	c := &Cond{X: VarRef(x, token.Pos{}), Op: token.LSS, Y: &ConstInt{Val: 3}}
	if got := c.String(); got != "x < 3" {
		t.Errorf("cond = %q", got)
	}
	var nilCond *Cond
	if got := nilCond.String(); got != "1" {
		t.Errorf("nil cond = %q, want 1 (infinite loop)", got)
	}
}

func TestOperandStrings(t *testing.T) {
	cases := []struct {
		op   Operand
		want string
	}{
		{&ConstInt{Val: -3}, "-3"},
		{&ConstFloat{Val: 2.5}, "2.5"},
		{&ConstString{Val: "hi"}, `"hi"`},
		{&ConstNull{}, "NULL"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("operand = %q, want %q", got, c.want)
		}
	}
}

func TestProgramLookupAndPrint(t *testing.T) {
	fobj := &ast.Object{Name: "main", Kind: ast.FuncObj,
		Type: types.FuncType(types.IntType, nil, false)}
	fn := &Function{Obj: fobj, Body: &Seq{List: []Stmt{
		&Return{X: &ConstInt{Val: 0}},
	}}}
	p := &Program{Functions: []*Function{fn}}
	if p.Lookup("main") != fn || p.Main() != fn {
		t.Error("Lookup/Main failed")
	}
	if p.Lookup("nosuch") != nil {
		t.Error("Lookup of missing function should be nil")
	}
	out := p.String()
	if !strings.Contains(out, "main") || !strings.Contains(out, "return 0") {
		t.Errorf("printer output:\n%s", out)
	}
}

func TestCountStmts(t *testing.T) {
	fobj := &ast.Object{Name: "main", Kind: ast.FuncObj,
		Type: types.FuncType(types.IntType, nil, false)}
	x := obj("x", types.IntType)
	fn := &Function{Obj: fobj, Body: &Seq{List: []Stmt{
		&Basic{Kind: AsgnCopy, LHS: VarRef(x, token.Pos{}), X: &ConstInt{Val: 1}},
		&If{Cond: &Cond{X: VarRef(x, token.Pos{})}, Then: &Seq{List: []Stmt{
			&Basic{Kind: AsgnCopy, LHS: VarRef(x, token.Pos{}), X: &ConstInt{Val: 2}},
		}}},
		&Return{X: VarRef(x, token.Pos{})},
	}}}
	p := &Program{Functions: []*Function{fn}}
	p.CountStmts()
	if p.NumBasicStmts != 2 {
		t.Errorf("NumBasicStmts = %d, want 2", p.NumBasicStmts)
	}
	if p.NumStmts != 4 { // 2 basics + if + return
		t.Errorf("NumStmts = %d, want 4", p.NumStmts)
	}
}
