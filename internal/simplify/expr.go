package simplify

import (
	"repro/internal/cc/ast"
	"repro/internal/cc/token"
	"repro/internal/cc/types"
	"repro/internal/simple"
)

// lowerExprStmt lowers an expression evaluated for its side effects.
func (s *simplifier) lowerExprStmt(e ast.Expr) {
	switch e := e.(type) {
	case *ast.Assign:
		s.lowerAssignExpr(e)
	case *ast.Unary:
		if e.Op == token.INC || e.Op == token.DEC {
			s.lowerIncDec(e.X, e.Op, e.Pos())
			return
		}
		s.lowerOperand(e)
	case *ast.Postfix:
		s.lowerIncDec(e.X, e.Op, e.Pos())
	case *ast.Call:
		s.lowerCall(e, nil)
	case *ast.Comma:
		s.lowerExprStmt(e.X)
		s.lowerExprStmt(e.Y)
	case *ast.Cast:
		s.lowerExprStmt(e.X)
	default:
		// Pure expression in statement position: evaluate for any nested
		// calls and discard.
		s.lowerOperand(e)
	}
}

// lowerAssignExpr lowers an assignment used for effect and returns the
// assigned location so enclosing expressions can reuse the value.
func (s *simplifier) lowerAssignExpr(e *ast.Assign) *simple.Ref {
	if e.Op != token.ASSIGN {
		// Compound assignment: lhs = lhs op rhs, evaluating lhs once.
		lhs := s.lowerToRef(e.LHS)
		x := s.refOperand(lhs, e.Pos())
		y := s.lowerOperand(e.RHS)
		s.emit(&simple.Basic{Kind: simple.AsgnBinary, LHS: lhs,
			X: x, Op: e.Op.BaseOp(), Y: y, Pos: e.Pos()})
		return lhs
	}
	lhs := s.lowerToRef(e.LHS)
	s.lowerInto(lhs, e.LHS.Type(), e.RHS)
	return lhs
}

// lowerIncDec lowers ++x/x++ (value discarded).
func (s *simplifier) lowerIncDec(x ast.Expr, op token.Kind, pos token.Pos) *simple.Ref {
	lhs := s.lowerToRef(x)
	bin := token.ADD
	if op == token.DEC {
		bin = token.SUB
	}
	s.emit(&simple.Basic{Kind: simple.AsgnBinary, LHS: lhs,
		X: s.refOperand(lhs, pos), Op: bin, Y: &simple.ConstInt{Val: 1}, Pos: pos})
	return lhs
}

// refOperand returns an operand reading from ref; deref references are
// loaded into a temporary first so the consuming statement stays basic.
func (s *simplifier) refOperand(r *simple.Ref, pos token.Pos) simple.Operand {
	if !r.Deref {
		return r
	}
	t := s.newTemp(r.Type(), pos)
	s.emit(&simple.Basic{Kind: simple.AsgnCopy, LHS: simple.VarRef(t, pos), X: r, Pos: pos})
	return simple.VarRef(t, pos)
}

// lowerInto emits statements assigning the value of e into lhs (of type lt).
func (s *simplifier) lowerInto(lhs *simple.Ref, lt *types.Type, e ast.Expr) {
	pos := e.Pos()
	switch e := e.(type) {
	case *ast.IntLit:
		s.emit(&simple.Basic{Kind: simple.AsgnCopy, LHS: lhs,
			X: s.coerceNull(&simple.ConstInt{Val: e.Val}, lt), Pos: pos})

	case *ast.FloatLit:
		s.emit(&simple.Basic{Kind: simple.AsgnCopy, LHS: lhs,
			X: &simple.ConstFloat{Val: e.Val}, Pos: pos})

	case *ast.StringLit:
		s.emit(&simple.Basic{Kind: simple.AsgnCopy, LHS: lhs,
			X: &simple.ConstString{Val: e.Val}, Pos: pos})

	case *ast.Ident:
		switch {
		case e.Obj.Kind == ast.FuncObj:
			// Function name decays to its address.
			s.emit(&simple.Basic{Kind: simple.AsgnAddr, LHS: lhs,
				Addr: simple.VarRef(e.Obj, pos), Pos: pos})
		case e.Obj.Type != nil && e.Obj.Type.Kind == types.Array:
			// Array name decays to &a[0].
			s.emit(&simple.Basic{Kind: simple.AsgnAddr, LHS: lhs,
				Addr: &simple.Ref{Var: e.Obj,
					Path: []simple.Sel{simple.IndexSel(simple.IdxZero)}, Pos: pos}, Pos: pos})
		case e.Obj.Type != nil && e.Obj.Type.IsAggregate():
			s.copyAggregate(lhs, simple.VarRef(e.Obj, pos), e.Obj.Type, pos)
		default:
			s.emit(&simple.Basic{Kind: simple.AsgnCopy, LHS: lhs,
				X: simple.VarRef(e.Obj, pos), Pos: pos})
		}

	case *ast.Unary:
		switch e.Op {
		case token.AND:
			addr := s.lowerToRef(e.X)
			s.emit(&simple.Basic{Kind: simple.AsgnAddr, LHS: lhs, Addr: addr, Pos: pos})
		case token.MUL:
			src := s.lowerToRef(e)
			if t := src.Type(); t != nil && t.IsAggregate() {
				s.copyAggregate(lhs, src, t, pos)
				return
			}
			s.emit(&simple.Basic{Kind: simple.AsgnCopy, LHS: lhs, X: src, Pos: pos})
		case token.INC, token.DEC:
			r := s.lowerIncDec(e.X, e.Op, pos)
			s.emit(&simple.Basic{Kind: simple.AsgnCopy, LHS: lhs,
				X: s.refOperand(r, pos), Pos: pos})
		case token.NOT:
			s.lowerBoolInto(lhs, e, pos)
		default: // - ~ +
			x := s.lowerOperand(e.X)
			s.emit(&simple.Basic{Kind: simple.AsgnUnary, LHS: lhs, Op: e.Op, X: x, Pos: pos})
		}

	case *ast.Postfix:
		// v = x++ : v = x; x = x + 1.
		r := s.lowerToRef(e.X)
		s.emit(&simple.Basic{Kind: simple.AsgnCopy, LHS: lhs,
			X: s.refOperand(r, pos), Pos: pos})
		s.lowerIncDec(e.X, e.Op, pos)

	case *ast.Binary:
		switch e.Op {
		case token.LAND, token.LOR:
			s.lowerBoolInto(lhs, e, pos)
		default:
			x := s.lowerOperand(e.X)
			y := s.lowerOperand(e.Y)
			s.emit(&simple.Basic{Kind: simple.AsgnBinary, LHS: lhs,
				X: x, Op: e.Op, Y: y, Pos: pos})
		}

	case *ast.Assign:
		r := s.lowerAssignExpr(e)
		s.emit(&simple.Basic{Kind: simple.AsgnCopy, LHS: lhs,
			X: s.refOperand(r, pos), Pos: pos})

	case *ast.Cond:
		condEval, cond := s.lowerCond(e.C)
		s.spliceSeq(condEval)
		thenSeq := s.inSeq(func() { s.lowerInto(lhs, lt, e.Then) })
		elseSeq := s.inSeq(func() { s.lowerInto(lhs, lt, e.Else) })
		s.emitStmt(&simple.If{Cond: cond, Then: thenSeq, Else: elseSeq, Pos: pos})

	case *ast.Call:
		s.lowerCall(e, lhs)

	case *ast.Index, *ast.Member:
		src := s.lowerToRef(e)
		st := src.Type()
		switch {
		case st != nil && st.IsAggregate():
			s.copyAggregate(lhs, src, st, pos)
		case st != nil && st.Kind == types.Array:
			// Array member/element decays to the address of its head.
			s.emit(&simple.Basic{Kind: simple.AsgnAddr, LHS: lhs,
				Addr: extendRef(src, simple.IndexSel(simple.IdxZero)), Pos: pos})
		default:
			s.emit(&simple.Basic{Kind: simple.AsgnCopy, LHS: lhs, X: src, Pos: pos})
		}

	case *ast.Cast:
		s.lowerInto(lhs, lt, e.X)

	case *ast.Comma:
		s.lowerExprStmt(e.X)
		s.lowerInto(lhs, lt, e.Y)

	default:
		s.errorf(pos, "internal: cannot lower %T", e)
	}
}

// lowerBoolInto lowers a boolean-producing expression (&&, ||, !) into lhs
// with explicit control flow, preserving short-circuit evaluation order.
func (s *simplifier) lowerBoolInto(lhs *simple.Ref, e ast.Expr, pos token.Pos) {
	switch e := e.(type) {
	case *ast.Binary:
		switch e.Op {
		case token.LAND:
			// lhs = 0; if (X) { lhs = (Y != 0); }
			condEval, cond := s.lowerCond(e.X)
			s.emit(&simple.Basic{Kind: simple.AsgnCopy, LHS: lhs,
				X: &simple.ConstInt{Val: 0}, Pos: pos})
			s.spliceSeq(condEval)
			thenSeq := s.inSeq(func() { s.lowerBoolInto(lhs, e.Y, pos) })
			s.emitStmt(&simple.If{Cond: cond, Then: thenSeq, Pos: pos})
			return
		case token.LOR:
			// lhs = 1; if (!X) { lhs = (Y != 0); }  — via else branch.
			condEval, cond := s.lowerCond(e.X)
			s.spliceSeq(condEval)
			thenSeq := s.inSeq(func() {
				s.emit(&simple.Basic{Kind: simple.AsgnCopy, LHS: lhs,
					X: &simple.ConstInt{Val: 1}, Pos: pos})
			})
			elseSeq := s.inSeq(func() { s.lowerBoolInto(lhs, e.Y, pos) })
			s.emitStmt(&simple.If{Cond: cond, Then: thenSeq, Else: elseSeq, Pos: pos})
			return
		}
	case *ast.Unary:
		if e.Op == token.NOT {
			x := s.lowerOperand(e.X)
			s.emit(&simple.Basic{Kind: simple.AsgnUnary, LHS: lhs,
				Op: token.NOT, X: x, Pos: pos})
			return
		}
	}
	// General scalar: lhs = (e != 0); pointers compare against NULL.
	x := s.lowerOperand(e)
	var zero simple.Operand = &simple.ConstInt{Val: 0}
	if t := e.Type(); t != nil && t.Decay().Kind == types.Pointer {
		zero = &simple.ConstNull{}
	}
	s.emit(&simple.Basic{Kind: simple.AsgnBinary, LHS: lhs,
		X: x, Op: token.NEQ, Y: zero, Pos: pos})
}

// lowerOperand lowers e to a simple operand: a constant or a variable
// reference without indirection. Anything more complex is computed into a
// temporary.
func (s *simplifier) lowerOperand(e ast.Expr) simple.Operand {
	pos := e.Pos()
	switch e := e.(type) {
	case *ast.IntLit:
		return &simple.ConstInt{Val: e.Val}
	case *ast.FloatLit:
		return &simple.ConstFloat{Val: e.Val}
	case *ast.StringLit:
		return &simple.ConstString{Val: e.Val}
	case *ast.Ident:
		if e.Obj.Kind == ast.FuncObj || (e.Obj.Type != nil && e.Obj.Type.Kind == types.Array) {
			break // decays to an address: materialize below
		}
		return simple.VarRef(e.Obj, pos)
	case *ast.Index, *ast.Member:
		r := s.lowerToRef(e)
		if t := r.Type(); t != nil && t.Kind == types.Array {
			break // decays to address
		}
		if !r.Deref {
			return r
		}
		return s.refOperand(r, pos)
	case *ast.Unary:
		if e.Op == token.MUL {
			r := s.lowerToRef(e)
			return s.refOperand(r, pos)
		}
	case *ast.Cast:
		return s.lowerOperand(e.X)
	case *ast.Comma:
		s.lowerExprStmt(e.X)
		return s.lowerOperand(e.Y)
	case *ast.Assign:
		r := s.lowerAssignExpr(e)
		return s.refOperand(r, pos)
	}
	// General case: compute into a temporary.
	t := s.newTemp(e.Type(), pos)
	s.lowerInto(simple.VarRef(t, pos), t.Type, e)
	return simple.VarRef(t, pos)
}

// lowerPtrVar lowers a pointer-valued expression into a bare variable
// holding the pointer.
func (s *simplifier) lowerPtrVar(e ast.Expr) *ast.Object {
	op := s.lowerOperand(e)
	if r, ok := op.(*simple.Ref); ok && !r.Deref && len(r.Path) == 0 {
		return r.Var
	}
	t := s.newTemp(e.Type(), e.Pos())
	x := op
	if r, ok := op.(*simple.Ref); ok {
		x = s.refOperand(r, e.Pos())
	}
	s.emit(&simple.Basic{Kind: simple.AsgnCopy,
		LHS: simple.VarRef(t, e.Pos()), X: x, Pos: e.Pos()})
	return t
}

// classifyIndex maps a subscript expression to the paper's head/tail
// abstraction: constant 0, constant >0, or statically unknown.
func classifyIndex(e ast.Expr) simple.IdxClass {
	if v, ok := foldIndex(e); ok {
		if v == 0 {
			return simple.IdxZero
		}
		if v > 0 {
			return simple.IdxPos
		}
	}
	return simple.IdxAny
}

func foldIndex(e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Val, true
	case *ast.Cast:
		return foldIndex(e.X)
	}
	return 0, false
}

// lowerToRef lowers an lvalue (or *-expression) to a SIMPLE reference with
// at most one level of indirection, introducing temporaries as needed.
func (s *simplifier) lowerToRef(e ast.Expr) *simple.Ref {
	pos := e.Pos()
	switch e := e.(type) {
	case *ast.Ident:
		return simple.VarRef(e.Obj, pos)

	case *ast.Member:
		if e.Arrow {
			// x->f  ==  (*x).f
			p := s.lowerPtrVar(e.X)
			return &simple.Ref{Var: p, Deref: true,
				DPath: []simple.Sel{simple.FieldSel(e.Name)}, Pos: pos}
		}
		base := s.lowerToRef(e.X)
		return extendRef(base, simple.FieldSel(e.Name))

	case *ast.Index:
		class := classifyIndex(e.I)
		// The points-to abstraction only needs the index class, but the
		// concrete operand is kept on the selector for the interpreter
		// oracle (evaluating it here also preserves side effects).
		idxOp := s.lowerOperand(e.I)
		xt := e.X.Type()
		if xt != nil && xt.Kind == types.Array {
			base := s.lowerToRef(e.X)
			return extendRef(base, simple.IndexSelOp(class, idxOp))
		}
		// Pointer indexing: p[i] == (*p)[i] in the paper's reference
		// taxonomy (a pointer into an array).
		p := s.lowerPtrVar(e.X)
		return &simple.Ref{Var: p, Deref: true,
			DPath: []simple.Sel{simple.IndexSelOp(class, idxOp)}, Pos: pos}

	case *ast.Unary:
		if e.Op == token.MUL {
			// *x : if x lowers to a direct named location, dereference it
			// in place (*p, *s.fp); otherwise load the pointer first.
			if op := s.lowerOperandNoDeref(e.X); op != nil {
				return &simple.Ref{Var: op.Var, Path: op.Path, Deref: true, Pos: pos}
			}
			p := s.lowerPtrVar(e.X)
			return &simple.Ref{Var: p, Deref: true, Pos: pos}
		}

	case *ast.Cast:
		return s.lowerToRef(e.X)

	case *ast.Assign:
		return s.lowerAssignExpr(e)
	}
	s.errorf(pos, "internal: expression is not an lvalue: %T", e)
	t := s.newTemp(e.Type(), pos)
	return simple.VarRef(t, pos)
}

// lowerOperandNoDeref returns a direct (non-indirect) reference for e when e
// is a plain variable or field chain; otherwise nil.
func (s *simplifier) lowerOperandNoDeref(e ast.Expr) *simple.Ref {
	switch e := e.(type) {
	case *ast.Ident:
		if e.Obj.Kind == ast.Var || e.Obj.Kind == ast.Param {
			return simple.VarRef(e.Obj, e.Pos())
		}
	case *ast.Member:
		if !e.Arrow {
			if base := s.lowerOperandNoDeref(e.X); base != nil {
				return extendRef(base, simple.FieldSel(e.Name))
			}
		}
	case *ast.Index:
		// a[i] with a an array and a trivially-evaluable subscript: a
		// named location (a_head/a_tail) with the operand attached.
		if xt := e.X.Type(); xt != nil && xt.Kind == types.Array {
			var idxOp simple.Operand
			switch ie := e.I.(type) {
			case *ast.IntLit:
				idxOp = &simple.ConstInt{Val: ie.Val}
			case *ast.Ident:
				if ie.Obj.Kind == ast.Var || ie.Obj.Kind == ast.Param {
					idxOp = simple.VarRef(ie.Obj, ie.Pos())
				}
			}
			if idxOp != nil {
				if base := s.lowerOperandNoDeref(e.X); base != nil {
					return extendRef(base, simple.IndexSelOp(classifyIndex(e.I), idxOp))
				}
			}
		}
	case *ast.Cast:
		return s.lowerOperandNoDeref(e.X)
	}
	return nil
}

// isPure reports whether e has no side effects (no calls, assignments, ++).
func isPure(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IntLit, *ast.FloatLit, *ast.StringLit, *ast.Ident:
		return true
	case *ast.Unary:
		return e.Op != token.INC && e.Op != token.DEC && isPure(e.X)
	case *ast.Binary:
		return isPure(e.X) && isPure(e.Y)
	case *ast.Index:
		return isPure(e.X) && isPure(e.I)
	case *ast.Member:
		return isPure(e.X)
	case *ast.Cast:
		return isPure(e.X)
	case *ast.Cond:
		return isPure(e.C) && isPure(e.Then) && isPure(e.Else)
	}
	return false
}

// lowerCond lowers a condition to a side-effect-free Cond plus the sequence
// of statements needed to (re)evaluate it.
func (s *simplifier) lowerCond(e ast.Expr) (*simple.Seq, *simple.Cond) {
	var cond *simple.Cond
	seq := s.inSeq(func() {
		switch e := e.(type) {
		case *ast.Binary:
			switch e.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				x := s.lowerOperand(e.X)
				y := s.lowerOperand(e.Y)
				// Normalize pointer comparisons against 0 to NULL.
				if xt := e.X.Type(); xt != nil {
					y = s.coerceNull(y, xt)
				}
				if yt := e.Y.Type(); yt != nil {
					x = s.coerceNull(x, yt)
				}
				cond = &simple.Cond{X: x, Op: e.Op, Y: y}
				return
			}
		case *ast.Unary:
			if e.Op == token.NOT {
				x := s.lowerOperand(e.X)
				cond = &simple.Cond{X: x, Op: token.EQL, Y: &simple.ConstInt{Val: 0}}
				return
			}
		}
		x := s.lowerOperand(e)
		cond = &simple.Cond{X: x}
	})
	return seq, cond
}

// ---------------------------------------------------------------------------
// Calls

// heapAllocators are recognized as producing a heap location.
var heapAllocators = map[string]bool{"malloc": true, "calloc": true, "realloc": true}

// lowerCall lowers a call; lhs receives the return value (may be nil).
func (s *simplifier) lowerCall(e *ast.Call, lhs *simple.Ref) {
	pos := e.Pos()

	// Peel casts around the callee.
	fun := e.Fun
	for {
		if c, ok := fun.(*ast.Cast); ok {
			fun = c.X
			continue
		}
		break
	}

	// Heap allocation.
	if id, ok := fun.(*ast.Ident); ok && id.Obj.Kind == ast.FuncObj && heapAllocators[id.Obj.Name] {
		var size simple.Operand = &simple.ConstInt{Val: 1}
		if len(e.Args) > 0 {
			// The size is the last argument for calloc, first for malloc;
			// points-to ignores it, so any operand will do.
			size = s.lowerArg(e.Args[len(e.Args)-1], nil)
		}
		if lhs == nil {
			t := s.newTemp(e.Type(), pos)
			lhs = simple.VarRef(t, pos)
		}
		s.emit(&simple.Basic{Kind: simple.AsgnMalloc, LHS: lhs, X: size, Pos: pos})
		return
	}

	// Deallocation: the external free keeps its argument's reference shape
	// (*pp, s.f, a[i]) instead of loading it into a temporary, so the
	// points-to analysis retargets the actual pointer cell rather than a
	// copy. Only safe for the external free — a program-defined free needs
	// bare arguments for the actual-to-formal parameter map.
	if id, ok := fun.(*ast.Ident); ok && id.Obj.Kind == ast.FuncObj &&
		id.Obj.Name == "free" && !s.defined["free"] && len(e.Args) == 1 {
		s.emit(&simple.Basic{Kind: simple.AsgnCall, LHS: lhs,
			Callee: id.Obj, Args: []simple.Operand{s.lowerFreeArg(e.Args[0])}, Pos: pos})
		return
	}

	// Argument lowering: constants or bare variable names only.
	var ftype *types.Type
	if ft := fun.Type(); ft != nil {
		switch {
		case ft.Kind == types.Func:
			ftype = ft
		case ft.Kind == types.Pointer && ft.Elem.Kind == types.Func:
			ftype = ft.Elem
		}
	}
	args := make([]simple.Operand, len(e.Args))
	for i, a := range e.Args {
		var pt *types.Type
		if ftype != nil && i < len(ftype.Params) {
			pt = ftype.Params[i]
		}
		args[i] = s.lowerArg(a, pt)
	}

	if id, ok := fun.(*ast.Ident); ok && id.Obj.Kind == ast.FuncObj {
		s.emit(&simple.Basic{Kind: simple.AsgnCall, LHS: lhs,
			Callee: id.Obj, Args: args, Pos: pos})
		return
	}

	fp := s.lowerFnPtrVar(fun)
	s.emit(&simple.Basic{Kind: simple.AsgnCallInd, LHS: lhs,
		FnPtr: fp, Args: args, Pos: pos})
}

// lowerFreeArg lowers the argument of the external free to a reference that
// still denotes the pointer's own cell (bare name, *pp, s.f, p->f, a[i]),
// rather than a temporary copy of its value, so free's kill applies to the
// real cell. Expressions without a cell fall back to normal argument
// lowering.
func (s *simplifier) lowerFreeArg(a ast.Expr) simple.Operand {
	switch e := a.(type) {
	case *ast.Cast:
		return s.lowerFreeArg(e.X)
	case *ast.Ident:
		if e.Obj.Kind != ast.FuncObj && (e.Obj.Type == nil || e.Obj.Type.Kind != types.Array) {
			return simple.VarRef(e.Obj, a.Pos())
		}
	case *ast.Index, *ast.Member:
		return s.lowerToRef(a)
	case *ast.Unary:
		if e.Op == token.MUL {
			return s.lowerToRef(a)
		}
	}
	return s.lowerArg(a, nil)
}

// lowerArg lowers one call argument to a constant or a bare variable.
func (s *simplifier) lowerArg(a ast.Expr, paramType *types.Type) simple.Operand {
	op := s.lowerOperand(a)
	op = s.coerceNull(op, paramType)
	r, ok := op.(*simple.Ref)
	if !ok {
		return op
	}
	if !r.Deref && len(r.Path) == 0 {
		return r
	}
	// Load a[i] / x.f into a temporary so the argument is a bare name.
	t := s.newTemp(r.Type(), a.Pos())
	s.emit(&simple.Basic{Kind: simple.AsgnCopy,
		LHS: simple.VarRef(t, a.Pos()), X: r, Pos: a.Pos()})
	return simple.VarRef(t, a.Pos())
}

// lowerFnPtrVar reduces an arbitrary callee expression to a bare variable of
// pointer-to-function type (paper §5: indirect calls go through a scalar
// function pointer after simplification).
func (s *simplifier) lowerFnPtrVar(fun ast.Expr) *ast.Object {
	pos := fun.Pos()
	switch f := fun.(type) {
	case *ast.Cast:
		return s.lowerFnPtrVar(f.X)
	case *ast.Ident:
		if f.Obj.Kind == ast.Var || f.Obj.Kind == ast.Param {
			if f.Obj.Type != nil && f.Obj.Type.IsFuncPointer() {
				return f.Obj
			}
		}
	case *ast.Unary:
		if f.Op == token.MUL {
			// (*e): if e is itself a pointer-to-function, *e denotes the
			// same function; peel the dereference.
			if xt := f.X.Type(); xt != nil && xt.Decay().IsFuncPointer() {
				return s.lowerFnPtrVar(f.X)
			}
			// Multi-level function pointer: load one level.
			r := s.lowerToRef(f)
			t := s.newTemp(f.Type(), pos)
			s.emit(&simple.Basic{Kind: simple.AsgnCopy,
				LHS: simple.VarRef(t, pos), X: r, Pos: pos})
			return t
		}
	}
	// General: load the function pointer value into a temporary.
	op := s.lowerOperand(fun)
	if r, ok := op.(*simple.Ref); ok && !r.Deref && len(r.Path) == 0 {
		return r.Var
	}
	ft := fun.Type()
	if ft != nil && ft.Kind == types.Func {
		ft = types.PointerTo(ft)
	}
	t := s.newTemp(ft, pos)
	if r, ok := op.(*simple.Ref); ok {
		op = s.refOperand(r, pos)
	}
	s.emit(&simple.Basic{Kind: simple.AsgnCopy,
		LHS: simple.VarRef(t, pos), X: op, Pos: pos})
	return t
}
