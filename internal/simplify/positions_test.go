package simplify_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/cc/parser"
	"repro/internal/simple"
	"repro/internal/simplify"
)

// kitchenSink exercises every lowering path that synthesizes statements or
// temporaries: compound/postfix assignment, short-circuit booleans,
// conditional expressions, aggregate copies, array decay, function-pointer
// loads, global initializers, returns of pointers, and heap calls.
const kitchenSink = `
struct node { int v; struct node *next; int arr[4]; };
int g = 5;
int garr[3];
int *gp = &g;
struct node gn;
int (*fp)(int);
int id(int x) { return x; }
int *mk(void) {
    int *q;
    q = (int *) malloc(4);
    return q;
}
int pick(int c) {
    int r;
    r = c ? g : garr[1];
    return r;
}
int main(void) {
    struct node a, b;
    int i;
    int x;
    char *s;
    int *h;
    s = "hello";
    fp = id;
    a.v = 1;
    a.next = &b;
    b = a;
    for (i = 0; i < 3; i++) garr[i] = i;
    while (i > 0) { i--; }
    do { x = fp(2); } while (0);
    switch (x) { case 1: x = 2; break; default: x = 3; }
    if (x && g || !i) x = pick(1);
    a.next->v += 2;
    h = mk();
    *h = x++;
    free(h);
    return x;
}
`

func checkProgPositions(t *testing.T, name string, prog *simple.Program) {
	t.Helper()
	refs := func(b *simple.Basic) []*simple.Ref {
		out := []*simple.Ref{b.LHS, b.Addr}
		add := func(op simple.Operand) {
			if r, ok := op.(*simple.Ref); ok {
				out = append(out, r)
			}
		}
		add(b.X)
		add(b.Y)
		for _, a := range b.Args {
			add(a)
		}
		return out
	}
	prog.ForEachBasic(func(b *simple.Basic) {
		if !b.Pos.IsValid() {
			t.Errorf("%s: statement `%s` has no source position", name, b)
		}
		for _, r := range refs(b) {
			if r != nil && !r.Pos.IsValid() {
				t.Errorf("%s: `%s`: reference %s has no source position", name, b, r)
			}
		}
	})
	for _, fn := range prog.Functions {
		for _, l := range fn.Locals {
			if !l.Pos.IsValid() {
				t.Errorf("%s: %s: local %s has no source position", name, fn.Name(), l.Name)
			}
		}
		if fn.RetVal != nil && !fn.RetVal.Pos.IsValid() {
			t.Errorf("%s: %s: __retval has no source position", name, fn.Name())
		}
	}
}

// TestPositionsPropagate is the regression test behind the checker's
// positioned diagnostics: every basic statement, reference, and
// simplifier-synthesized temporary must carry a valid source position, since
// diagnostics anchor on them.
func TestPositionsPropagate(t *testing.T) {
	tu, err := parser.Parse("sink.c", kitchenSink)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatal(err)
	}
	checkProgPositions(t, "sink.c", prog)
}

// TestPositionsPropagateCorpus sweeps the benchmark suite and a slice of
// generated programs through the same invariant.
func TestPositionsPropagateCorpus(t *testing.T) {
	srcs := map[string]string{}
	for _, name := range bench.Names() {
		s, err := bench.Source(name)
		if err != nil {
			t.Fatal(err)
		}
		srcs[name] = s
	}
	for seed := 0; seed < 10; seed++ {
		srcs[fmt.Sprintf("gen-%d", seed)] = bench.Generate(bench.DefaultGenConfig(int64(seed)))
	}
	for name, src := range srcs {
		tu, err := parser.Parse(name+".c", src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prog, err := simplify.Simplify(tu)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkProgPositions(t, name, prog)
	}
}
