// Package simplify lowers the resolved C AST to the SIMPLE intermediate
// representation (paper §2): complex statements become sequences of basic
// statements with compiler temporaries, every basic statement has at most
// one level of pointer indirection per variable reference, conditions become
// side-effect-free comparisons of simple operands, call arguments become
// constants or variable names, and variable initializers move into the
// statement stream (global initializers into Program.GlobalInit).
package simplify

import (
	"fmt"

	"repro/internal/cc/ast"
	"repro/internal/cc/token"
	"repro/internal/cc/types"
	"repro/internal/simple"
	"repro/internal/structurer"
)

// Simplify lowers a translation unit to a SIMPLE program. The structurer
// runs first to eliminate gotos.
func Simplify(tu *ast.TranslationUnit) (*simple.Program, error) {
	if err := structurer.Structure(tu); err != nil {
		return nil, err
	}
	s := &simplifier{
		prog: &simple.Program{
			File:        tu.File,
			SourceLines: tu.SourceLines,
		},
		defined: make(map[string]bool, len(tu.Funcs)),
	}
	for _, fd := range tu.Funcs {
		s.defined[fd.Obj.Name] = true
	}
	for _, g := range tu.Globals {
		s.prog.Globals = append(s.prog.Globals, g.Obj)
	}

	// Global initializers become a synthetic statement sequence evaluated
	// before main.
	s.fn = &simple.Function{Obj: &ast.Object{Name: "__global_init", Kind: ast.FuncObj,
		Type: types.FuncType(types.VoidType, nil, false), Global: true}}
	s.out = &simple.Seq{}
	for _, g := range tu.Globals {
		if g.Init != nil {
			s.lowerInit(g.Obj, g.Init)
		}
	}
	s.prog.GlobalInit = s.out
	// Temporaries created while lowering global initializers become
	// globals themselves (they live in the synthetic init context).
	s.prog.Globals = append(s.prog.Globals, s.fn.Locals...)

	for _, fd := range tu.Funcs {
		s.prog.Functions = append(s.prog.Functions, s.lowerFunc(fd))
	}
	s.prog.CountStmts()
	if len(s.errors) > 0 {
		return s.prog, s.errors[0]
	}
	return s.prog, nil
}

type simplifier struct {
	prog    *simple.Program
	fn      *simple.Function
	out     *simple.Seq // current output sequence
	temps   int
	stmtID  int
	errors  []error
	defined map[string]bool // functions with bodies in this unit
}

func (s *simplifier) errorf(pos token.Pos, format string, args ...any) {
	s.errors = append(s.errors, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// emit appends a basic statement to the current sequence, assigning its ID.
func (s *simplifier) emit(b *simple.Basic) *simple.Basic {
	s.stmtID++
	b.ID = s.stmtID
	s.out.List = append(s.out.List, b)
	return b
}

// emitStmt appends a compositional statement.
func (s *simplifier) emitStmt(st simple.Stmt) { s.out.List = append(s.out.List, st) }

// inSeq runs f with a fresh output sequence and returns it.
func (s *simplifier) inSeq(f func()) *simple.Seq {
	saved := s.out
	s.out = &simple.Seq{}
	f()
	seq := s.out
	s.out = saved
	return seq
}

// newTemp creates a compiler temporary of the given type. The "t$" prefix
// cannot collide with C identifiers.
func (s *simplifier) newTemp(t *types.Type, pos token.Pos) *ast.Object {
	if t == nil || t.Kind == types.Void {
		t = types.IntType
	}
	// Array- and function-typed values decay before they are stored.
	t = t.Decay()
	s.temps++
	obj := &ast.Object{Name: fmt.Sprintf("t$%d", s.temps), Kind: ast.Var, Type: t, Pos: pos}
	s.fn.Locals = append(s.fn.Locals, obj)
	return obj
}

func (s *simplifier) lowerFunc(fd *ast.FuncDecl) *simple.Function {
	fn := &simple.Function{
		Obj:    fd.Obj,
		Params: fd.Params,
		Pos:    fd.Pos,
	}
	// Static locals behave like globals: hoist them (the parser already
	// uniquified their names within the function; prefix with the function
	// name for program-wide uniqueness).
	for _, l := range fd.Locals {
		if l.Static {
			l.Name = fd.Name() + "." + l.Name
			l.Global = true
			s.prog.Globals = append(s.prog.Globals, l)
		} else {
			fn.Locals = append(fn.Locals, l)
		}
	}
	if fd.Obj.Type.Ret.HasPointers() {
		fn.RetVal = &ast.Object{Name: "__retval", Kind: ast.Var,
			Type: fd.Obj.Type.Ret.Decay(), Pos: fd.Pos}
	}
	s.fn = fn
	fn.Body = s.inSeq(func() { s.lowerStmt(fd.Body) })
	return fn
}

// ---------------------------------------------------------------------------
// Statements

func (s *simplifier) lowerStmt(st ast.Stmt) {
	switch st := st.(type) {
	case nil:
		return

	case *ast.Block:
		for _, c := range st.List {
			s.lowerStmt(c)
		}

	case *ast.Empty:
		// drop

	case *ast.ExprStmt:
		s.lowerExprStmt(st.X)

	case *ast.DeclStmt:
		for i, obj := range st.Objects {
			if st.Inits[i] != nil {
				s.lowerInit(obj, st.Inits[i])
			}
		}

	case *ast.If:
		condEval, cond := s.lowerCond(st.Cond)
		// Condition-evaluation statements execute once, before the if.
		s.spliceSeq(condEval)
		thenSeq := s.inSeq(func() { s.lowerStmt(st.Then) })
		var elseSeq *simple.Seq
		if st.Else != nil {
			elseSeq = s.inSeq(func() { s.lowerStmt(st.Else) })
		}
		s.emitStmt(&simple.If{Cond: cond, Then: thenSeq, Else: elseSeq, Pos: st.Pos()})

	case *ast.While:
		condEval, cond := s.lowerCond(st.Cond)
		body := s.inSeq(func() { s.lowerStmt(st.Body) })
		s.emitStmt(&simple.While{CondEval: condEval, Cond: cond, Body: body, Pos: st.Pos()})

	case *ast.Do:
		body := s.inSeq(func() { s.lowerStmt(st.Body) })
		condEval, cond := s.lowerCond(st.Cond)
		s.emitStmt(&simple.DoWhile{Body: body, CondEval: condEval, Cond: cond, Pos: st.Pos()})

	case *ast.For:
		initSeq := s.inSeq(func() { s.lowerStmt(st.Init) })
		var condEval *simple.Seq
		var cond *simple.Cond
		if st.Cond != nil {
			condEval, cond = s.lowerCond(st.Cond)
		}
		postSeq := s.inSeq(func() {
			if st.Post != nil {
				s.lowerExprStmt(st.Post)
			}
		})
		body := s.inSeq(func() { s.lowerStmt(st.Body) })
		s.emitStmt(&simple.For{Init: initSeq, CondEval: condEval, Cond: cond,
			Post: postSeq, Body: body, Pos: st.Pos()})

	case *ast.Switch:
		tag := s.lowerOperand(st.Tag)
		sw := &simple.Switch{Tag: tag, Pos: st.Pos()}
		for _, c := range st.Cases {
			body := s.inSeq(func() {
				for _, cs := range c.Body {
					s.lowerStmt(cs)
				}
			})
			sw.Cases = append(sw.Cases, &simple.SwitchCase{
				Vals: c.Vals, IsDefault: c.IsDefault, Body: body,
			})
		}
		s.emitStmt(sw)

	case *ast.Break:
		s.emitStmt(&simple.Break{Pos: st.Pos()})

	case *ast.Continue:
		s.emitStmt(&simple.Continue{Pos: st.Pos()})

	case *ast.Return:
		var x simple.Operand
		if st.X != nil {
			x = s.lowerOperand(st.X)
			if s.fn.RetVal != nil {
				// __retval = x, so the callee's pointer results can be
				// unmapped to the call site.
				rt := s.fn.RetVal.Type
				x = s.coerceNull(x, rt)
				if ref, ok := x.(*simple.Ref); ok && isFuncName(ref) {
					s.emit(&simple.Basic{Kind: simple.AsgnAddr,
						LHS: simple.VarRef(s.fn.RetVal, st.Pos()), Addr: ref, Pos: st.Pos()})
				} else if rt.IsAggregate() {
					s.copyAggregate(simple.VarRef(s.fn.RetVal, st.Pos()), x, rt, st.Pos())
				} else {
					s.emit(&simple.Basic{Kind: simple.AsgnCopy,
						LHS: simple.VarRef(s.fn.RetVal, st.Pos()), X: x, Pos: st.Pos()})
				}
			}
		}
		s.emitStmt(&simple.Return{X: x, Pos: st.Pos()})

	case *ast.Goto, *ast.Label:
		s.errorf(st.Pos(), "internal: goto/label survived structuring")

	default:
		s.errorf(st.Pos(), "internal: unexpected statement %T", st)
	}
}

// spliceSeq appends all statements of seq to the current output.
func (s *simplifier) spliceSeq(seq *simple.Seq) {
	if seq == nil {
		return
	}
	s.out.List = append(s.out.List, seq.List...)
}

// lowerInit lowers a variable initializer to assignments targeting obj.
func (s *simplifier) lowerInit(obj *ast.Object, init *ast.Init) {
	s.lowerInitInto(&simple.Ref{Var: obj, Pos: init.Pos}, obj.Type, init)
}

func (s *simplifier) lowerInitInto(dst *simple.Ref, t *types.Type, init *ast.Init) {
	if init.Expr != nil {
		x := s.lowerOperand(init.Expr)
		x = s.coerceNull(x, t)
		if ref, ok := x.(*simple.Ref); ok && isFuncName(ref) {
			s.emit(&simple.Basic{Kind: simple.AsgnAddr, LHS: dst, Addr: ref, Pos: init.Pos})
			return
		}
		if t != nil && t.IsAggregate() {
			s.copyAggregate(dst, x, t, init.Pos)
			return
		}
		s.emit(&simple.Basic{Kind: simple.AsgnCopy, LHS: dst, X: x, Pos: init.Pos})
		return
	}
	// Brace list.
	switch {
	case t != nil && t.Kind == types.Array:
		for i, el := range init.List {
			class := simple.IdxPos
			if i == 0 {
				class = simple.IdxZero
			}
			elemRef := extendRef(dst, simple.IndexSelOp(class, &simple.ConstInt{Val: int64(i)}))
			s.lowerInitInto(elemRef, t.Elem, el)
		}
	case t != nil && t.IsAggregate():
		for i, el := range init.List {
			if i >= len(t.Fields) {
				break
			}
			f := t.Fields[i]
			s.lowerInitInto(extendRef(dst, simple.FieldSel(f.Name)), f.Type, el)
		}
	default:
		if len(init.List) > 0 {
			s.lowerInitInto(dst, t, init.List[0])
		}
	}
}

// extendRef returns a copy of r with one more selector on its deepest path.
func extendRef(r *simple.Ref, sel simple.Sel) *simple.Ref {
	nr := &simple.Ref{
		Var: r.Var, Deref: r.Deref, Pos: r.Pos,
		Path:  append([]simple.Sel{}, r.Path...),
		DPath: append([]simple.Sel{}, r.DPath...),
	}
	if r.Deref {
		nr.DPath = append(nr.DPath, sel)
	} else {
		nr.Path = append(nr.Path, sel)
	}
	return nr
}

// isFuncName reports whether ref names a function (which decays to its
// address when used as a value).
func isFuncName(r *simple.Ref) bool {
	return !r.Deref && len(r.Path) == 0 && len(r.DPath) == 0 && r.Var.Kind == ast.FuncObj
}

// coerceNull turns the integer constant 0 into the null pointer constant
// when the destination type is a pointer.
func (s *simplifier) coerceNull(x simple.Operand, t *types.Type) simple.Operand {
	if t == nil {
		return x
	}
	if c, ok := x.(*simple.ConstInt); ok && c.Val == 0 && t.Decay().Kind == types.Pointer {
		return &simple.ConstNull{}
	}
	return x
}

// copyAggregate decomposes an aggregate assignment dst = src into per-field
// assignments (paper §3.3). src must be a Ref of aggregate type.
func (s *simplifier) copyAggregate(dst *simple.Ref, src simple.Operand, t *types.Type, pos token.Pos) {
	srcRef, ok := src.(*simple.Ref)
	if !ok {
		s.errorf(pos, "cannot assign non-lvalue to aggregate")
		return
	}
	s.copyAggRefs(dst, srcRef, t, pos)
}

func (s *simplifier) copyAggRefs(dst, src *simple.Ref, t *types.Type, pos token.Pos) {
	switch {
	case t.IsAggregate():
		for _, f := range t.Fields {
			s.copyAggRefs(extendRef(dst, simple.FieldSel(f.Name)),
				extendRef(src, simple.FieldSel(f.Name)), f.Type, pos)
		}
	case t.Kind == types.Array:
		// Copy both abstract element locations: head to head, tail to tail.
		s.copyAggRefs(extendRef(dst, simple.IndexSel(simple.IdxZero)),
			extendRef(src, simple.IndexSel(simple.IdxZero)), t.Elem, pos)
		s.copyAggRefs(extendRef(dst, simple.IndexSel(simple.IdxPos)),
			extendRef(src, simple.IndexSel(simple.IdxPos)), t.Elem, pos)
	default:
		s.emit(&simple.Basic{Kind: simple.AsgnCopy, LHS: dst, X: src, Pos: pos})
	}
}
