package simplify

import (
	"strings"
	"testing"

	"repro/internal/cc/parser"
	"repro/internal/simple"
)

func mustSimplify(t *testing.T, src string) *simple.Program {
	t.Helper()
	tu, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	prog, err := Simplify(tu)
	if err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	return prog
}

// collectBasics returns all basic statements of a function in order.
func collectBasics(f *simple.Function) []*simple.Basic {
	var out []*simple.Basic
	var walk func(s simple.Stmt)
	walk = func(s simple.Stmt) {
		switch s := s.(type) {
		case *simple.Basic:
			out = append(out, s)
		case *simple.Seq:
			if s == nil {
				return
			}
			for _, c := range s.List {
				walk(c)
			}
		case *simple.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *simple.While:
			walk(s.CondEval)
			walk(s.Body)
		case *simple.DoWhile:
			walk(s.Body)
			walk(s.CondEval)
		case *simple.For:
			walk(s.Init)
			walk(s.CondEval)
			walk(s.Post)
			walk(s.Body)
		case *simple.Switch:
			for _, c := range s.Cases {
				walk(c.Body)
			}
		}
	}
	walk(f.Body)
	return out
}

func TestSimplifyBasicAssignments(t *testing.T) {
	prog := mustSimplify(t, `
int main() {
	int x, y;
	int *p;
	x = 5;
	p = &x;
	y = *p;
	*p = y;
	return 0;
}
`)
	f := prog.Lookup("main")
	basics := collectBasics(f)
	var kinds []simple.BasicKind
	for _, b := range basics {
		kinds = append(kinds, b.Kind)
	}
	want := []simple.BasicKind{simple.AsgnCopy, simple.AsgnAddr, simple.AsgnCopy, simple.AsgnCopy}
	if len(kinds) != len(want) {
		t.Fatalf("got %d basics, want %d: %v", len(kinds), len(want), basics)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("basic %d: got kind %d (%s), want %d", i, kinds[i], basics[i], want[i])
		}
	}
	// y = *p must be a one-level indirect load.
	if !basics[2].X.(*simple.Ref).Deref {
		t.Error("y = *p should have indirect RHS")
	}
	// *p = y must be an indirect store.
	if !basics[3].LHS.Deref {
		t.Error("*p = y should have indirect LHS")
	}
}

func TestSimplifyDoubleDeref(t *testing.T) {
	prog := mustSimplify(t, `
int main() {
	int x, y;
	int *p;
	int **pp;
	p = &x;
	pp = &p;
	y = **pp;
	**pp = 3;
	return y;
}
`)
	f := prog.Lookup("main")
	// **pp must be split: a temp load t = *pp, then use of *t. No basic
	// statement may have more than one level of indirection per reference.
	for _, b := range collectBasics(f) {
		for _, r := range basicRefs(b) {
			if r.Deref && hasDerefInPath(r) {
				t.Errorf("statement %s has a multi-level indirect reference", b)
			}
		}
	}
	if len(f.Locals) < 4 {
		t.Errorf("expected temporaries for **pp, locals: %d", len(f.Locals))
	}
}

func basicRefs(b *simple.Basic) []*simple.Ref {
	var refs []*simple.Ref
	add := func(op simple.Operand) {
		if r, ok := op.(*simple.Ref); ok && r != nil {
			refs = append(refs, r)
		}
	}
	if b.LHS != nil {
		refs = append(refs, b.LHS)
	}
	if b.X != nil {
		add(b.X)
	}
	if b.Y != nil {
		add(b.Y)
	}
	if b.Addr != nil {
		refs = append(refs, b.Addr)
	}
	for _, a := range b.Args {
		add(a)
	}
	return refs
}

func hasDerefInPath(*simple.Ref) bool { return false } // Ref encodes one deref at most by construction

func TestSimplifyArrayIndexClasses(t *testing.T) {
	prog := mustSimplify(t, `
int *arr[10];
int x;
int main() {
	int i;
	i = 3;
	arr[0] = &x;
	arr[5] = &x;
	arr[i] = &x;
	return 0;
}
`)
	f := prog.Lookup("main")
	basics := collectBasics(f)
	var classes []simple.IdxClass
	for _, b := range basics {
		if b.Kind == simple.AsgnAddr && b.LHS != nil && len(b.LHS.Path) == 1 {
			classes = append(classes, b.LHS.Path[0].Index)
		}
	}
	want := []simple.IdxClass{simple.IdxZero, simple.IdxPos, simple.IdxAny}
	if len(classes) != 3 {
		t.Fatalf("expected 3 indexed address assignments, got %d", len(classes))
	}
	for i := range want {
		if classes[i] != want[i] {
			t.Errorf("index %d: got class %v, want %v", i, classes[i], want[i])
		}
	}
}

func TestSimplifyCallArgsAreSimple(t *testing.T) {
	prog := mustSimplify(t, `
int g(int a, int *p) { return a + *p; }
int main() {
	int x;
	int arr[4];
	x = g(arr[2] + 1, &x);
	return x;
}
`)
	f := prog.Lookup("main")
	for _, b := range collectBasics(f) {
		if b.Kind != simple.AsgnCall {
			continue
		}
		for _, a := range b.Args {
			if r, ok := a.(*simple.Ref); ok {
				if r.Deref || len(r.Path) > 0 {
					t.Errorf("call argument %s is not a bare variable", r)
				}
			}
		}
	}
}

func TestSimplifyMalloc(t *testing.T) {
	prog := mustSimplify(t, `
int main() {
	int *p;
	p = (int *) malloc(40);
	return 0;
}
`)
	f := prog.Lookup("main")
	found := false
	for _, b := range collectBasics(f) {
		if b.Kind == simple.AsgnMalloc {
			found = true
			if b.LHS.Var.Name != "p" {
				t.Errorf("malloc result should go to p, got %s", b.LHS)
			}
		}
	}
	if !found {
		t.Fatal("no AsgnMalloc emitted")
	}
}

func TestSimplifyIndirectCall(t *testing.T) {
	prog := mustSimplify(t, `
int f(void) { return 1; }
int (*fp)(void);
int (*fparr[4])(void);
int main() {
	int x;
	fp = f;
	x = fp();
	x = (*fp)();
	x = fparr[1]();
	return x;
}
`)
	f := prog.Lookup("main")
	nInd := 0
	for _, b := range collectBasics(f) {
		if b.Kind == simple.AsgnCallInd {
			nInd++
			if b.FnPtr == nil {
				t.Error("indirect call without function pointer variable")
			}
		}
	}
	if nInd != 3 {
		t.Errorf("expected 3 indirect calls, got %d", nInd)
	}
	// fp = f must become an address assignment.
	foundAddr := false
	for _, b := range collectBasics(f) {
		if b.Kind == simple.AsgnAddr && b.Addr != nil && b.Addr.Var.Name == "f" {
			foundAddr = true
		}
	}
	if !foundAddr {
		t.Error("fp = f should lower to fp = &f")
	}
}

func TestSimplifyGlobalInit(t *testing.T) {
	prog := mustSimplify(t, `
int x;
int *p = &x;
int f(void) { return 0; }
int (*table[2])(void) = { f, f };
int main() { return 0; }
`)
	if prog.GlobalInit == nil || len(prog.GlobalInit.List) < 3 {
		t.Fatalf("global initializers missing: %+v", prog.GlobalInit)
	}
	nAddr := 0
	for _, s := range prog.GlobalInit.List {
		if b, ok := s.(*simple.Basic); ok && b.Kind == simple.AsgnAddr {
			nAddr++
		}
	}
	if nAddr != 3 {
		t.Errorf("expected 3 address initializers (p, table[0], table[1]), got %d", nAddr)
	}
}

func TestSimplifyStructAssign(t *testing.T) {
	prog := mustSimplify(t, `
struct pair { int a; int *p; };
int main() {
	struct pair u, v;
	int x;
	u.p = &x;
	v = u;
	return 0;
}
`)
	f := prog.Lookup("main")
	// v = u decomposes into field copies including v.p = u.p.
	found := false
	for _, b := range collectBasics(f) {
		if b.Kind == simple.AsgnCopy && b.LHS != nil && len(b.LHS.Path) == 1 &&
			b.LHS.Var.Name == "v" && b.LHS.Path[0].Name == "p" {
			found = true
		}
	}
	if !found {
		t.Error("struct assignment should decompose into field copies (v.p = u.p)")
	}
}

func TestSimplifyShortCircuit(t *testing.T) {
	prog := mustSimplify(t, `
int g(void) { return 1; }
int main() {
	int a, b, c;
	a = 1; b = 0;
	c = a && g();
	c = a || b;
	return c;
}
`)
	f := prog.Lookup("main")
	// The && with a call must introduce control flow (an If) so g() only
	// runs when a is true.
	nIf := 0
	var walk func(s simple.Stmt)
	walk = func(s simple.Stmt) {
		switch s := s.(type) {
		case *simple.Seq:
			for _, c := range s.List {
				walk(c)
			}
		case *simple.If:
			nIf++
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		}
	}
	walk(f.Body)
	if nIf < 2 {
		t.Errorf("expected short-circuit lowering to produce >=2 ifs, got %d", nIf)
	}
}

func TestSimplifyWhileCondWithDeref(t *testing.T) {
	prog := mustSimplify(t, `
struct node { struct node *next; };
int main() {
	struct node n;
	struct node *p;
	p = &n;
	while (p->next) {
		p = p->next;
	}
	return 0;
}
`)
	f := prog.Lookup("main")
	var wh *simple.While
	var walk func(s simple.Stmt)
	walk = func(s simple.Stmt) {
		switch s := s.(type) {
		case *simple.Seq:
			for _, c := range s.List {
				walk(c)
			}
		case *simple.While:
			wh = s
		}
	}
	walk(f.Body)
	if wh == nil {
		t.Fatal("while loop not found")
	}
	if wh.CondEval == nil || len(wh.CondEval.List) == 0 {
		t.Fatal("while with p->next condition must have CondEval statements")
	}
}

func TestSimplifyGotoBackward(t *testing.T) {
	prog := mustSimplify(t, `
int main() {
	int i;
	i = 0;
loop:
	i++;
	if (i < 10) goto loop;
	return i;
}
`)
	f := prog.Lookup("main")
	// The backward goto becomes a do-while.
	found := false
	var walk func(s simple.Stmt)
	walk = func(s simple.Stmt) {
		switch s := s.(type) {
		case *simple.Seq:
			for _, c := range s.List {
				walk(c)
			}
		case *simple.DoWhile:
			found = true
		}
	}
	walk(f.Body)
	if !found {
		t.Error("backward goto should lower to a do-while loop")
	}
}

func TestSimplifyStaticLocalBecomesGlobal(t *testing.T) {
	prog := mustSimplify(t, `
int counter(void) {
	static int n;
	n = n + 1;
	return n;
}
int main() { return counter(); }
`)
	found := false
	for _, g := range prog.Globals {
		if strings.Contains(g.Name, "counter.") {
			found = true
		}
	}
	if !found {
		t.Error("static local should be hoisted to a program global")
	}
	f := prog.Lookup("counter")
	if len(f.Locals) != 0 {
		t.Errorf("counter should have no true locals, got %d", len(f.Locals))
	}
}

func TestSimplifyReturnPointer(t *testing.T) {
	prog := mustSimplify(t, `
int g;
int *addr(void) { return &g; }
int main() {
	int *p;
	p = addr();
	return 0;
}
`)
	f := prog.Lookup("addr")
	if f.RetVal == nil {
		t.Fatal("pointer-returning function should have a RetVal pseudo-variable")
	}
	foundRetAssign := false
	for _, b := range collectBasics(f) {
		if b.LHS != nil && b.LHS.Var == f.RetVal {
			foundRetAssign = true
		}
	}
	if !foundRetAssign {
		t.Error("return &g should assign __retval")
	}
}

func TestStmtCounting(t *testing.T) {
	prog := mustSimplify(t, `
int main() {
	int x;
	x = 1;
	x = x + 2;
	if (x) { x = 3; }
	return x;
}
`)
	if prog.NumBasicStmts < 3 {
		t.Errorf("NumBasicStmts = %d, want >= 3", prog.NumBasicStmts)
	}
	if prog.NumStmts <= prog.NumBasicStmts {
		t.Errorf("NumStmts (%d) should exceed NumBasicStmts (%d) due to if/return",
			prog.NumStmts, prog.NumBasicStmts)
	}
}

func TestSimplifyPointerToArrayIndexing(t *testing.T) {
	prog := mustSimplify(t, `
int main() {
	double a[10];
	double *p;
	double v;
	p = a;
	v = p[3];
	p[0] = v;
	return 0;
}
`)
	f := prog.Lookup("main")
	// p[3] must lower to an indirect reference through p with a
	// positive-index selector on the pointee.
	found := false
	for _, b := range collectBasics(f) {
		for _, r := range basicRefs(b) {
			if r.Var.Name == "p" && r.Deref && len(r.DPath) == 1 &&
				r.DPath[0].Kind == simple.SelIndex && r.DPath[0].Index == simple.IdxPos {
				found = true
			}
		}
	}
	if !found {
		t.Error("p[3] should lower to (*p)[k] with a positive index class")
	}
}
