package structurer

import (
	"fmt"
	"strings"

	"repro/internal/cc/ast"
	"repro/internal/cc/token"
	"repro/internal/cc/types"
)

// liftGotos implements the outward-movement step of Erosa & Hendren's goto
// elimination: a goto nested more deeply than its label is moved one
// construct outward at a time by introducing a flag variable:
//
//	while (...) { ... if (c) goto L; ... }      =>
//	    gflag = 0;
//	    while (...) { ... if (c) { gflag = 1; break; } ... }
//	    if (gflag) goto L;
//
// Inside an if, the remainder of the branch is guarded by !gflag instead of
// using break. The same-level pass (rewriteList) finishes the job once the
// goto reaches the label's level. Inward movement (a goto jumping *into* a
// construct) is not supported and is reported as an error.
func liftGotos(fd *ast.FuncDecl) error {
	const maxSteps = 1000
	for step := 0; step < maxSteps; step++ {
		site := findCrossLevel(fd.Body)
		if site == nil {
			return nil
		}
		if !site.liftable {
			return fmt.Errorf("%s: goto %s jumps into a construct (inward movement unsupported)",
				site.gotoStmt.Pos(), site.label)
		}
		liftOne(fd, site)
	}
	return fmt.Errorf("goto lifting did not converge")
}

// gotoSite describes one goto that must move outward: the list holding the
// goto (or its `if (c) goto L` wrapper), the enclosing construct, and the
// list holding that construct.
type gotoSite struct {
	label     string
	gotoStmt  ast.Stmt // the Goto or the if-goto wrapper
	inner     *[]ast.Stmt
	innerIdx  int
	parent    *[]ast.Stmt // list containing the construct
	parentIdx int
	construct ast.Stmt // the loop/if/switch being lifted out of
	isLoop    bool     // construct supports break (loop or switch)
	liftable  bool
}

// findCrossLevel locates the first goto whose label is not in the same
// statement list, together with the lifting context.
func findCrossLevel(body *ast.Block) *gotoSite {
	// Collect the set of lists that contain each label.
	labelList := make(map[string]*[]ast.Stmt)
	var scanLabels func(list *[]ast.Stmt)
	var walkLists func(list *[]ast.Stmt, visit func(list *[]ast.Stmt))
	walkLists = func(list *[]ast.Stmt, visit func(list *[]ast.Stmt)) {
		visit(list)
		for _, s := range *list {
			switch s := s.(type) {
			case *ast.Block:
				walkLists(&s.List, visit)
			case *ast.If:
				walkBranch(s.Then, visit, walkLists)
				if s.Else != nil {
					walkBranch(s.Else, visit, walkLists)
				}
			case *ast.While:
				walkBranch(s.Body, visit, walkLists)
			case *ast.Do:
				walkBranch(s.Body, visit, walkLists)
			case *ast.For:
				walkBranch(s.Body, visit, walkLists)
			case *ast.Switch:
				for _, c := range s.Cases {
					walkLists(&c.Body, visit)
				}
			case *ast.Label:
				if inner, ok := s.Stmt.(*ast.Block); ok {
					walkLists(&inner.List, visit)
				}
			}
		}
	}
	scanLabels = func(list *[]ast.Stmt) {
		for _, s := range *list {
			if l, ok := s.(*ast.Label); ok {
				labelList[l.Name] = list
			}
		}
	}
	walkLists(&body.List, scanLabels)

	// Walk again tracking the construct chain to find a cross-level goto.
	var found *gotoSite
	type frame struct {
		list      *[]ast.Stmt
		construct ast.Stmt
		parent    *[]ast.Stmt
		parentIdx int
		isLoop    bool
	}
	var rec func(list *[]ast.Stmt, stack []frame)
	rec = func(list *[]ast.Stmt, stack []frame) {
		if found != nil {
			return
		}
		for i, s := range *list {
			label, _, isGoto := condGoto(s)
			if isGoto {
				if labelList[label] == list {
					continue // same level: handled by rewriteList
				}
				if len(stack) == 0 {
					continue
				}
				top := stack[len(stack)-1]
				site := &gotoSite{
					label:     label,
					gotoStmt:  s,
					inner:     list,
					innerIdx:  i,
					parent:    top.parent,
					parentIdx: top.parentIdx,
					construct: top.construct,
					isLoop:    top.isLoop,
				}
				// Liftable only when the label lives somewhere shallower
				// along this chain (outward); a label not on the chain at
				// all means the goto would have to move *inward* later —
				// report unsupported only if lifting can never reach it.
				site.liftable = true
				found = site
				return
			}
			push := func(inner *[]ast.Stmt, construct ast.Stmt, isLoop bool) {
				rec(inner, append(stack, frame{
					list: inner, construct: construct,
					parent: list, parentIdx: i, isLoop: isLoop,
				}))
			}
			switch s := s.(type) {
			case *ast.Block:
				// A plain block is transparent: treat its list with the
				// same construct context by recursing with the block as a
				// non-breaking construct.
				push(&s.List, s, false)
			case *ast.If:
				if b, ok := s.Then.(*ast.Block); ok {
					push(&b.List, s, false)
				}
				if s.Else != nil {
					if b, ok := s.Else.(*ast.Block); ok {
						push(&b.List, s, false)
					}
				}
			case *ast.While:
				if b, ok := s.Body.(*ast.Block); ok {
					push(&b.List, s, true)
				}
			case *ast.Do:
				if b, ok := s.Body.(*ast.Block); ok {
					push(&b.List, s, true)
				}
			case *ast.For:
				if b, ok := s.Body.(*ast.Block); ok {
					push(&b.List, s, true)
				}
			case *ast.Switch:
				for _, c := range s.Cases {
					push(&c.Body, s, true)
				}
			case *ast.Label:
				if b, ok := s.Stmt.(*ast.Block); ok {
					push(&b.List, s, false)
				}
			}
			if found != nil {
				return
			}
		}
	}
	rec(&body.List, nil)
	return found
}

func walkBranch(s ast.Stmt, visit func(*[]ast.Stmt), walk func(*[]ast.Stmt, func(*[]ast.Stmt))) {
	if b, ok := s.(*ast.Block); ok {
		walk(&b.List, visit)
	}
}

// liftOne performs one outward movement step for the site.
func liftOne(fd *ast.FuncDecl, site *gotoSite) {
	// Number flags per function for deterministic, race-free naming.
	n := 1
	for _, l := range fd.Locals {
		if strings.HasPrefix(l.Name, "goto$") {
			n++
		}
	}
	flag := &ast.Object{
		Name: fmt.Sprintf("goto$%s$%d", site.label, n),
		Kind: ast.Var,
		Type: types.IntType,
		Pos:  site.gotoStmt.Pos(),
	}
	fd.Locals = append(fd.Locals, flag)
	pos := site.gotoStmt.Pos()

	mkIdent := func() *ast.Ident {
		id := &ast.Ident{Obj: flag}
		id.P = pos
		id.T = types.IntType
		return id
	}
	mkAssign := func(v int64) ast.Stmt {
		lit := &ast.IntLit{Val: v}
		lit.P = pos
		lit.T = types.IntType
		as := &ast.Assign{Op: token.ASSIGN, LHS: mkIdent(), RHS: lit}
		as.P = pos
		as.T = types.IntType
		es := &ast.ExprStmt{X: as}
		es.P = pos
		return es
	}

	// Build the replacement for the goto inside the construct.
	setAndEscape := func() ast.Stmt {
		list := []ast.Stmt{mkAssign(1)}
		if site.isLoop {
			br := &ast.Break{}
			br.P = pos
			list = append(list, br)
		}
		blk := &ast.Block{List: list}
		blk.P = pos
		return blk
	}

	var replacement ast.Stmt
	label, cond, _ := condGoto(site.gotoStmt)
	if cond != nil {
		guard := &ast.If{Cond: cond, Then: setAndEscape()}
		guard.P = pos
		replacement = guard
	} else {
		replacement = setAndEscape()
	}
	(*site.inner)[site.innerIdx] = replacement

	// Inside a non-breaking construct (if/block), guard the statements
	// after the goto so they do not execute once the flag is set.
	if !site.isLoop && site.innerIdx+1 < len(*site.inner) {
		rest := append([]ast.Stmt{}, (*site.inner)[site.innerIdx+1:]...)
		zero := &ast.IntLit{Val: 0}
		zero.P = pos
		zero.T = types.IntType
		eq := &ast.Binary{Op: token.EQL, X: mkIdent(), Y: zero}
		eq.P = pos
		eq.T = types.IntType
		blk := &ast.Block{List: rest}
		blk.P = pos
		guard := &ast.If{Cond: eq, Then: blk}
		guard.P = pos
		*site.inner = append((*site.inner)[:site.innerIdx+1], guard)
	}

	// Before the construct: flag = 0. After it: if (flag) goto label.
	reGoto := &ast.Goto{Label: label}
	reGoto.P = pos
	reIf := &ast.If{Cond: mkIdent(), Then: reGoto}
	reIf.P = pos

	parent := site.parent
	idx := site.parentIdx
	nl := append([]ast.Stmt{}, (*parent)[:idx]...)
	nl = append(nl, mkAssign(0), (*parent)[idx], reIf)
	nl = append(nl, (*parent)[idx+1:]...)
	*parent = nl
}
