// Package structurer eliminates goto statements, turning unstructured
// control flow into equivalent structured flow so that the compositional
// SIMPLE analysis rules apply (paper §2, footnote 2; Erosa & Hendren 1994).
//
// The implementation handles the patterns that occur in practice in the
// benchmark suite — same-level forward and backward gotos, including the
// common `if (c) goto L;` conditional form:
//
//	backward:  L: S1 … Sn; if (c) goto L;   =>  do { S1 … Sn } while (c);
//	backward:  L: S1 … Sn; goto L;          =>  while (1) { S1 … Sn }
//	forward:   if (c) goto L; S1 … Sn; L:   =>  if (!c) { S1 … Sn }
//	forward:   goto L; S1 … Sn; L:          =>  (dead code removed)
//
// Gotos that cross nesting levels are rejected with an error; the full
// Erosa–Hendren algorithm (goto lifting/inward movement) is future work.
package structurer

import (
	"fmt"

	"repro/internal/cc/ast"
	"repro/internal/cc/token"
)

// Structure rewrites all functions of tu in place, removing goto/label
// statements. It returns an error if an unsupported goto pattern remains.
func Structure(tu *ast.TranslationUnit) error {
	for _, f := range tu.Funcs {
		if !hasGoto(f.Body) {
			// Still unwrap labels that are never targeted.
			stripLabels(f.Body)
			continue
		}
		// Outward movement first: gotos nested deeper than their label are
		// lifted level by level with flag variables.
		if err := liftGotos(f); err != nil {
			return fmt.Errorf("function %s: %w", f.Name(), err)
		}
		if err := structureBlock(f.Body); err != nil {
			return fmt.Errorf("function %s: %w", f.Name(), err)
		}
		if g := findGoto(f.Body); g != nil {
			return fmt.Errorf("function %s: %s: unsupported goto pattern (label %s requires inward movement)",
				f.Name(), g.Pos(), g.Label)
		}
		stripLabels(f.Body)
	}
	return nil
}

func hasGoto(s ast.Stmt) bool { return findGoto(s) != nil }

func findGoto(s ast.Stmt) *ast.Goto {
	switch s := s.(type) {
	case *ast.Goto:
		return s
	case *ast.Block:
		for _, c := range s.List {
			if g := findGoto(c); g != nil {
				return g
			}
		}
	case *ast.If:
		if g := findGoto(s.Then); g != nil {
			return g
		}
		if s.Else != nil {
			return findGoto(s.Else)
		}
	case *ast.While:
		return findGoto(s.Body)
	case *ast.Do:
		return findGoto(s.Body)
	case *ast.For:
		return findGoto(s.Body)
	case *ast.Switch:
		for _, c := range s.Cases {
			for _, cs := range c.Body {
				if g := findGoto(cs); g != nil {
					return g
				}
			}
		}
	case *ast.Label:
		return findGoto(s.Stmt)
	}
	return nil
}

// stripLabels unwraps Label statements in place (the label itself carries no
// behaviour once gotos are gone).
func stripLabels(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		for i, c := range s.List {
			if l, ok := c.(*ast.Label); ok {
				s.List[i] = l.Stmt
				stripLabels(l.Stmt)
				continue
			}
			stripLabels(c)
		}
	case *ast.If:
		stripLabels(s.Then)
		if s.Else != nil {
			stripLabels(s.Else)
		}
	case *ast.While:
		stripLabels(s.Body)
	case *ast.Do:
		stripLabels(s.Body)
	case *ast.For:
		stripLabels(s.Body)
	case *ast.Switch:
		for _, c := range s.Cases {
			for i, cs := range c.Body {
				if l, ok := cs.(*ast.Label); ok {
					c.Body[i] = l.Stmt
					stripLabels(l.Stmt)
					continue
				}
				stripLabels(cs)
			}
		}
	case *ast.Label:
		stripLabels(s.Stmt)
	}
}

// structureBlock removes same-level goto/label pairs within each block,
// recursing into nested structures first.
func structureBlock(s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.Block:
		for _, c := range s.List {
			if err := structureBlock(c); err != nil {
				return err
			}
		}
		return rewriteList(&s.List)
	case *ast.If:
		if err := structureBlock(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return structureBlock(s.Else)
		}
	case *ast.While:
		return structureBlock(s.Body)
	case *ast.Do:
		return structureBlock(s.Body)
	case *ast.For:
		return structureBlock(s.Body)
	case *ast.Switch:
		for _, c := range s.Cases {
			for _, cs := range c.Body {
				if err := structureBlock(cs); err != nil {
					return err
				}
			}
			if err := rewriteList(&c.Body); err != nil {
				return err
			}
		}
	case *ast.Label:
		return structureBlock(s.Stmt)
	}
	return nil
}

// condGoto recognizes `goto L` and `if (c) goto L` (with no else) and
// returns the label and condition (nil for unconditional).
func condGoto(s ast.Stmt) (label string, cond ast.Expr, ok bool) {
	switch s := s.(type) {
	case *ast.Goto:
		return s.Label, nil, true
	case *ast.If:
		if s.Else != nil {
			return "", nil, false
		}
		then := s.Then
		if b, isBlock := then.(*ast.Block); isBlock && len(b.List) == 1 {
			then = b.List[0]
		}
		if g, isGoto := then.(*ast.Goto); isGoto {
			return g.Label, s.Cond, true
		}
	}
	return "", nil, false
}

// rewriteList repeatedly eliminates same-level goto/label pairs in list.
func rewriteList(list *[]ast.Stmt) error {
	for changed := true; changed; {
		changed = false
		l := *list
		// Index labels at this level.
		labelAt := make(map[string]int)
		for i, s := range l {
			if lab, ok := s.(*ast.Label); ok {
				labelAt[lab.Name] = i
			}
		}
		for j, s := range l {
			label, cond, ok := condGoto(s)
			if !ok {
				continue
			}
			i, here := labelAt[label]
			if !here {
				continue
			}
			if i <= j {
				// Backward goto: loop over l[i..j-1].
				lab := l[i].(*ast.Label)
				body := make([]ast.Stmt, 0, j-i)
				body = append(body, lab.Stmt)
				body = append(body, l[i+1:j]...)
				blk := &ast.Block{List: body}
				blk.P = lab.Pos()
				var loop ast.Stmt
				if cond != nil {
					d := &ast.Do{Body: blk, Cond: cond}
					d.P = lab.Pos()
					loop = d
				} else {
					one := &ast.IntLit{Val: 1}
					one.P = lab.Pos()
					w := &ast.While{Cond: one, Body: blk}
					w.P = lab.Pos()
					loop = w
				}
				nl := append([]ast.Stmt{}, l[:i]...)
				nl = append(nl, loop)
				nl = append(nl, l[j+1:]...)
				*list = nl
				changed = true
			} else {
				// Forward goto: guard (or drop) l[j+1..i-1].
				skipped := append([]ast.Stmt{}, l[j+1:i]...)
				nl := append([]ast.Stmt{}, l[:j]...)
				if cond != nil {
					blk := &ast.Block{List: skipped}
					blk.P = s.Pos()
					neg := &ast.Unary{Op: token.NOT, X: cond}
					neg.P = cond.Pos()
					guard := &ast.If{Cond: neg, Then: blk}
					guard.P = s.Pos()
					nl = append(nl, guard)
				}
				nl = append(nl, l[i:]...) // keep the label; stripped later
				*list = nl
				changed = true
			}
			break
		}
	}
	return nil
}
