package structurer

import (
	"strings"
	"testing"

	"repro/internal/cc/ast"
	"repro/internal/cc/parser"
)

func structure(t *testing.T, src string) (*ast.TranslationUnit, error) {
	t.Helper()
	tu, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return tu, Structure(tu)
}

func countKind(s ast.Stmt, pred func(ast.Stmt) bool) int {
	n := 0
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		if s == nil {
			return
		}
		if pred(s) {
			n++
		}
		switch s := s.(type) {
		case *ast.Block:
			for _, c := range s.List {
				walk(c)
			}
		case *ast.If:
			walk(s.Then)
			walk(s.Else)
		case *ast.While:
			walk(s.Body)
		case *ast.Do:
			walk(s.Body)
		case *ast.For:
			walk(s.Body)
		case *ast.Switch:
			for _, c := range s.Cases {
				for _, cs := range c.Body {
					walk(cs)
				}
			}
		case *ast.Label:
			walk(s.Stmt)
		}
	}
	walk(s)
	return n
}

func isGoto(s ast.Stmt) bool  { _, ok := s.(*ast.Goto); return ok }
func isLabel(s ast.Stmt) bool { _, ok := s.(*ast.Label); return ok }
func isDo(s ast.Stmt) bool    { _, ok := s.(*ast.Do); return ok }
func isWhile(s ast.Stmt) bool { _, ok := s.(*ast.While); return ok }
func isIf(s ast.Stmt) bool    { _, ok := s.(*ast.If); return ok }

func TestBackwardConditionalGoto(t *testing.T) {
	tu, err := structure(t, `
int main() {
	int i;
	i = 0;
loop:
	i++;
	if (i < 10) goto loop;
	return i;
}
`)
	if err != nil {
		t.Fatalf("Structure: %v", err)
	}
	body := tu.Funcs[0].Body
	if countKind(body, isGoto) != 0 || countKind(body, isLabel) != 0 {
		t.Error("gotos/labels must be eliminated")
	}
	if countKind(body, isDo) != 1 {
		t.Error("backward conditional goto should become a do-while")
	}
}

func TestBackwardUnconditionalGoto(t *testing.T) {
	tu, err := structure(t, `
int main() {
	int i;
	i = 0;
again:
	i++;
	if (i >= 5) return i;
	goto again;
}
`)
	if err != nil {
		t.Fatalf("Structure: %v", err)
	}
	body := tu.Funcs[0].Body
	if countKind(body, isGoto) != 0 {
		t.Error("gotos must be eliminated")
	}
	if countKind(body, isWhile) != 1 {
		t.Error("unconditional backward goto should become while(1)")
	}
}

func TestForwardConditionalGoto(t *testing.T) {
	tu, err := structure(t, `
int main() {
	int x, c;
	x = 0;
	if (c) goto skip;
	x = 1;
	x = 2;
skip:
	return x;
}
`)
	if err != nil {
		t.Fatalf("Structure: %v", err)
	}
	body := tu.Funcs[0].Body
	if countKind(body, isGoto) != 0 || countKind(body, isLabel) != 0 {
		t.Error("gotos/labels must be eliminated")
	}
	// Skipped statements are guarded by the negated condition.
	if countKind(body, isIf) < 1 {
		t.Error("forward conditional goto should introduce a guard if")
	}
}

func TestForwardUnconditionalGotoDropsDeadCode(t *testing.T) {
	tu, err := structure(t, `
int main() {
	int x;
	x = 1;
	goto out;
	x = 2;
out:
	return x;
}
`)
	if err != nil {
		t.Fatalf("Structure: %v", err)
	}
	body := tu.Funcs[0].Body
	if countKind(body, isGoto) != 0 {
		t.Error("gotos must be eliminated")
	}
	// x = 2 is dead and dropped: only x = 1 and return remain.
	nAssign := countKind(body, func(s ast.Stmt) bool {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		_, isAssign := es.X.(*ast.Assign)
		return isAssign
	})
	if nAssign != 1 {
		t.Errorf("dead assignment should be dropped, have %d assignments", nAssign)
	}
}

func TestGotoOutOfLoopLifted(t *testing.T) {
	tu, err := structure(t, `
int main() {
	int i;
	for (i = 0; i < 10; i++) {
		if (i == 5) goto out;
	}
	i = -1;
out:
	return i;
}
`)
	if err != nil {
		t.Fatalf("goto out of a loop should be lifted: %v", err)
	}
	body := tu.Funcs[0].Body
	if countKind(body, isGoto) != 0 || countKind(body, isLabel) != 0 {
		t.Error("gotos/labels must be eliminated after lifting")
	}
	// Lifting introduces a flag variable.
	foundFlag := false
	for _, l := range tu.Funcs[0].Locals {
		if strings.HasPrefix(l.Name, "goto$") {
			foundFlag = true
		}
	}
	if !foundFlag {
		t.Error("lifting should add a flag local")
	}
}

func TestGotoOutOfNestedLoops(t *testing.T) {
	tu, err := structure(t, `
int main() {
	int i, j, found;
	found = 0;
	for (i = 0; i < 4; i++) {
		for (j = 0; j < 4; j++) {
			if (i * j == 6) goto done;
		}
	}
	found = -1;
done:
	return found;
}
`)
	if err != nil {
		t.Fatalf("two-level lift failed: %v", err)
	}
	if countKind(tu.Funcs[0].Body, isGoto) != 0 {
		t.Error("gotos must be fully eliminated")
	}
}

func TestGotoOutOfSwitch(t *testing.T) {
	tu, err := structure(t, `
int main() {
	int v, r;
	v = 2;
	r = 0;
	switch (v) {
	case 1:
		r = 1;
		break;
	case 2:
		goto done;
	default:
		r = 9;
	}
	r = 100;
done:
	return r;
}
`)
	if err != nil {
		t.Fatalf("goto out of switch should be lifted: %v", err)
	}
	if countKind(tu.Funcs[0].Body, isGoto) != 0 {
		t.Error("gotos must be eliminated")
	}
}

func TestGotoOutOfLoopInsideSwitch(t *testing.T) {
	tu, err := structure(t, `
int main() {
	int v, i, r;
	v = 1;
	r = 0;
	switch (v) {
	case 1:
		for (i = 0; i < 10; i++) {
			if (i == 3) goto out;
			r++;
		}
		break;
	}
	r = -1;
out:
	return r;
}
`)
	if err != nil {
		t.Fatalf("two-level lift through switch failed: %v", err)
	}
	if countKind(tu.Funcs[0].Body, isGoto) != 0 {
		t.Error("gotos must be eliminated")
	}
}

func TestGotoIntoConstructRejected(t *testing.T) {
	_, err := structure(t, `
int main() {
	int i;
	i = 0;
	goto inside;
	while (i < 10) {
inside:
		i++;
	}
	return i;
}
`)
	if err == nil {
		t.Fatal("goto into a loop (inward movement) should be rejected")
	}
	if !strings.Contains(err.Error(), "inward") && !strings.Contains(err.Error(), "unsupported") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestNoGotoNoop(t *testing.T) {
	tu, err := structure(t, `
int main() {
	int i, s;
	s = 0;
	for (i = 0; i < 3; i++) s += i;
	return s;
}
`)
	if err != nil {
		t.Fatalf("Structure: %v", err)
	}
	if countKind(tu.Funcs[0].Body, func(ast.Stmt) bool { return true }) == 0 {
		t.Error("body should be preserved")
	}
}

func TestUnusedLabelStripped(t *testing.T) {
	tu, err := structure(t, `
int main() {
	int x;
unused:
	x = 1;
	return x;
}
`)
	if err != nil {
		t.Fatalf("Structure: %v", err)
	}
	if countKind(tu.Funcs[0].Body, isLabel) != 0 {
		t.Error("unused labels should be stripped")
	}
}
