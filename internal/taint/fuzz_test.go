package taint_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cc/parser"
	"repro/internal/pta"
	"repro/internal/simplify"
	"repro/internal/taint"
	"repro/internal/testutil"
)

// genTaintProgram builds a small C program from fuzz knobs: which source
// feeds the flow, which sink consumes it, whether a sanitizer intervenes,
// whether the flow crosses a function-pointer call, and whether the sink
// sits inside a loop.
func genTaintProgram(src, sink uint8, sanitized, viaFnPtr, inLoop bool) string {
	var b strings.Builder
	b.WriteString("void use(char *c) {\n")
	stmt := ""
	switch sink % 4 {
	case 0:
		stmt = "system(c);"
	case 1:
		stmt = "printf(c);"
	case 2:
		stmt = "execl(c);"
	default:
		stmt = "strcat(c, c);"
	}
	if inLoop {
		fmt.Fprintf(&b, "    int i;\n    i = 0;\n    while (i < 3) {\n        %s\n        i = i + 1;\n    }\n", stmt)
	} else {
		fmt.Fprintf(&b, "    %s\n", stmt)
	}
	b.WriteString("}\n")
	b.WriteString("int main(int argc, char **argv) {\n")
	b.WriteString("    char buf[16];\n    char *c;\n    void (*fp)(char *);\n")
	switch src % 4 {
	case 0:
		b.WriteString("    c = argv[1];\n")
	case 1:
		b.WriteString("    c = getenv(\"X\");\n")
	case 2:
		b.WriteString("    read(0, buf, 16);\n    c = buf;\n")
	default:
		b.WriteString("    fgets(buf, 16, 0);\n    c = buf;\n")
	}
	if sanitized {
		b.WriteString("    sanitize(c);\n")
	}
	if viaFnPtr {
		b.WriteString("    fp = &use;\n    fp(c);\n")
	} else {
		b.WriteString("    use(c);\n")
	}
	b.WriteString("    return 0;\n}\n")
	return b.String()
}

// FuzzTaintParallelEquivalence: for every generated source/sink/sanitizer
// shape, the rendered taint diagnostics must be byte-identical between the
// sequential, parallel and unmemoized analyses.
func FuzzTaintParallelEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(0), false, false, false)
	f.Add(uint8(1), uint8(1), false, true, false)
	f.Add(uint8(2), uint8(2), true, false, true)
	f.Add(uint8(3), uint8(3), false, true, true)
	f.Fuzz(func(t *testing.T, src, sink uint8, sanitized, viaFnPtr, inLoop bool) {
		source := genTaintProgram(src, sink, sanitized, viaFnPtr, inLoop)
		tu, err := parser.Parse("fuzz.c", source)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, source)
		}
		prog, err := simplify.Simplify(tu)
		if err != nil {
			t.Fatalf("simplify: %v\n%s", err, source)
		}
		var base []string
		for i, opts := range []pta.Options{
			{Workers: 1, RecordContexts: true},
			{Workers: 4, RecordContexts: true},
			{Workers: 4, NoMemo: true, RecordContexts: true},
		} {
			res, err := pta.Analyze(prog, opts)
			if err != nil {
				t.Fatalf("analyze: %v\n%s", err, source)
			}
			diags, err := taint.Run(res, nil)
			if err != nil {
				t.Fatalf("taint: %v\n%s", err, source)
			}
			got := testutil.Render(diags)
			if i == 0 {
				base = got
				continue
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("variant %d diagnostics differ:\ngot:  %s\nbase: %s\nprogram:\n%s",
					i, strings.Join(got, "\n"), strings.Join(base, "\n"), source)
			}
		}
	})
}
