package taint

import "strings"

// pragmaKey introduces a sanitizer pragma inside a comment:
//
//	// taint:sanitizes quote
//	/* taint:sanitizes quote escape_html */
//
// Every identifier after the key on the same line names a function the taint
// pass trusts to kill the taint of its arguments' pointees.
const pragmaKey = "taint:sanitizes"

// PragmaSanitizers scans C source text for sanitizer pragmas and returns the
// function names they declare, in order of appearance, deduplicated.
func PragmaSanitizers(src string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, line := range strings.Split(src, "\n") {
		rest := line
		for {
			idx := strings.Index(rest, pragmaKey)
			if idx < 0 {
				break
			}
			rest = rest[idx+len(pragmaKey):]
			for _, f := range strings.Fields(rest) {
				name := trimIdent(f)
				if name == "" {
					break // "*/" or other non-identifier ends the list
				}
				if !seen[name] {
					seen[name] = true
					out = append(out, name)
				}
				if name != f {
					break // trailing junk ("quote*/") ends the list after it
				}
			}
		}
	}
	return out
}

// trimIdent returns the leading C identifier of s, or "".
func trimIdent(s string) string {
	for i, r := range s {
		if r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || i > 0 && r >= '0' && r <= '9' {
			continue
		}
		return s[:i]
	}
	return s
}
