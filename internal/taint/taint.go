// Package taint is a flow- and context-sensitive taint-propagation client
// built on the D/P points-to results: it seeds taint at configurable sources
// (argv, getenv, read, recv, fgets, the scanf family), propagates it through
// assignments, arithmetic and loads/stores using the per-invocation-graph-node
// points-to annotations, crosses calls — including function-pointer call
// sites resolved by the points-to engine — through the same map/unmap naming
// the analysis used, and reports tainted data reaching configurable sinks
// (system/exec*, unbounded string copies, format strings, array subscripts).
//
// Taintedness carries the paper's definite/possible split. A cell is tainted
// D when every execution reaching the program point leaves attacker-derived
// data in it, and P when some execution may. Stores through a pointer taint
// every abstract target: a strong update (which can also *clear* taint) needs
// the target set to be one single definite non-multi location, mirroring the
// analysis's own kill rule; anything weaker only adds possible taint or
// demotes definite taint to possible. Sanitizer calls (a small recognized
// table, extensible with a "taint:sanitizes fn" comment pragma) kill the
// taint of their arguments' pointees under the same strong/weak rules.
//
// Severity lifts certainty to calling contexts exactly as package check does:
// a sink receiving definitely tainted data in every analyzed context is an
// error, a sink possibly receiving tainted data in some context is a warning.
// Per-context verdicts come from a walk of each thread root's invocation
// subtree; like package race, spawned pthread roots are walked independently
// with an empty taint state — taint does not flow through pthread_create
// arguments.
package taint

import (
	"fmt"
	"sort"

	"repro/internal/cc/token"
	"repro/internal/pta"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/live"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// Severity grades a diagnostic, matching package check's convention.
type Severity int

// Severities: Warning for taint possible in some context, Error for taint
// definite in every context.
const (
	Warning Severity = iota
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Kind names the sink class that produced a diagnostic.
type Kind string

// Diagnostic kinds.
const (
	TaintedExec   Kind = "tainted-exec"   // command execution (system, exec*)
	TaintedCopy   Kind = "tainted-copy"   // unbounded copy (strcpy, strcat, sprintf data)
	TaintedFormat Kind = "tainted-format" // attacker-controlled format string
	TaintedIndex  Kind = "tainted-index"  // attacker-controlled array subscript
)

// Diag is one positioned taint diagnostic.
type Diag struct {
	Pos  token.Pos
	Sev  Severity
	Kind Kind
	Msg  string
	// Ctx is the invocation-graph path under which the flow happens (for an
	// error, any path works: all are bad).
	Ctx string
	// Fn is the enclosing function.
	Fn string
	// Stmt is the sink statement, for the dynamic-taint oracle.
	Stmt *simple.Basic
}

func (d Diag) String() string {
	s := fmt.Sprintf("%s: %s: %s: %s", d.Pos, d.Sev, d.Kind, d.Msg)
	if d.Ctx != "" {
		s += fmt.Sprintf(" [context: %s]", d.Ctx)
	}
	return s
}

// Source describes one taint source function.
type Source struct {
	// Ret taints the call's result value (getenv).
	Ret bool
	// Bufs lists argument indices whose pointees receive tainted data
	// (read/recv fill their buffer argument).
	Bufs []int
	// BufsFrom, when >= 0, taints the pointees of every argument from that
	// index on (scanf stores through all arguments after the format).
	BufsFrom int
}

// Sink describes one taint sink function.
type Sink struct {
	// Kind labels diagnostics for tainted data arguments.
	Kind Kind
	// Args lists the data-argument indices checked for taint.
	Args []int
	// ArgsFrom, when >= 0, checks every argument from that index on.
	ArgsFrom int
	// Format, when >= 0, is a format-string argument: tainted data there is
	// reported as TaintedFormat regardless of Kind.
	Format int
}

// Config selects the source, sink and sanitizer tables. The tables apply to
// external functions only (a program defining its own "system" is analyzed
// as written), except sanitizers, which also silence defined functions — the
// pragma is a trust annotation about the body.
type Config struct {
	Sources    map[string]Source
	Sinks      map[string]Sink
	Sanitizers map[string]bool
}

// ArgvSource is the Sources key enabling taint seeding of main's pointer
// parameters (the argv vector).
const ArgvSource = "argv"

// DefaultConfig returns the default source/sink/sanitizer tables.
func DefaultConfig() *Config {
	return &Config{
		Sources: map[string]Source{
			ArgvSource: {BufsFrom: -1},
			"getenv":   {Ret: true, BufsFrom: -1},
			"gets":     {Bufs: []int{0}, BufsFrom: -1},
			"fgets":    {Bufs: []int{0}, BufsFrom: -1},
			"read":     {Bufs: []int{1}, BufsFrom: -1},
			"recv":     {Bufs: []int{1}, BufsFrom: -1},
			"scanf":    {BufsFrom: 1},
		},
		Sinks: map[string]Sink{
			"system":  {Kind: TaintedExec, Args: []int{0}, ArgsFrom: -1, Format: -1},
			"popen":   {Kind: TaintedExec, Args: []int{0}, ArgsFrom: -1, Format: -1},
			"execl":   {Kind: TaintedExec, ArgsFrom: 0, Format: -1},
			"execv":   {Kind: TaintedExec, ArgsFrom: 0, Format: -1},
			"execvp":  {Kind: TaintedExec, ArgsFrom: 0, Format: -1},
			"strcpy":  {Kind: TaintedCopy, Args: []int{1}, ArgsFrom: -1, Format: -1},
			"strcat":  {Kind: TaintedCopy, Args: []int{1}, ArgsFrom: -1, Format: -1},
			"sprintf": {Kind: TaintedCopy, ArgsFrom: 2, Format: 1},
			"printf":  {Kind: TaintedFormat, ArgsFrom: -1, Format: 0},
		},
		Sanitizers: map[string]bool{
			"sanitize": true,
		},
	}
}

// AddSanitizers registers additional sanitizer function names (typically from
// PragmaSanitizers).
func (c *Config) AddSanitizers(names ...string) {
	if c.Sanitizers == nil {
		c.Sanitizers = make(map[string]bool)
	}
	for _, n := range names {
		c.Sanitizers[n] = true
	}
}

// Metrics summarizes one taint run for Result.Metrics.
type Metrics struct {
	Sources    int // statements that seeded taint (argv counts once)
	Sinks      int // distinct sink sites checked
	Sanitizers int // statements that killed taint
	Errors     int
	Warnings   int
}

// Run propagates taint over an analyzed program and returns its diagnostics,
// sorted by position. The analysis must have been run with
// Options.RecordContexts and without ShareContexts (the same preconditions as
// packages check and race). A nil cfg uses DefaultConfig.
func Run(res *pta.Result, cfg *Config) ([]Diag, error) {
	ds, _, err := RunWithMetrics(res, cfg)
	return ds, err
}

// RunWithMetrics is Run plus per-run counters.
func RunWithMetrics(res *pta.Result, cfg *Config) ([]Diag, Metrics, error) {
	var m Metrics
	if res.Opts.ShareContexts {
		return nil, m, fmt.Errorf("taint: analysis ran with ShareContexts; re-run without it")
	}
	if !res.Annots.ContextsEnabled() {
		return nil, m, fmt.Errorf("taint: analysis ran without Options.RecordContexts")
	}
	if cfg == nil {
		cfg = DefaultConfig()
	}
	w := &walker{
		res: res, cfg: cfg,
		verdicts:   make(map[vkey]*site),
		sourceStmt: make(map[*simple.Basic]bool),
		sanStmt:    make(map[*simple.Basic]bool),
	}
	roots := []*invgraph.Node{res.Graph.Root}
	roots = append(roots, res.Graph.ThreadNodes()...)
	for _, r := range roots {
		st := newState()
		if r == res.Graph.Root {
			w.seedArgv(st)
		}
		w.walkNode(r, st)
	}
	diags := w.report()
	m.Sources = len(w.sourceStmt)
	if w.argvSeeded {
		m.Sources++
	}
	m.Sinks = len(w.verdicts)
	m.Sanitizers = len(w.sanStmt)
	for _, d := range diags {
		if d.Sev == Error {
			m.Errors++
		} else {
			m.Warnings++
		}
	}
	if res.Metrics != nil {
		res.Metrics.TaintSources = int64(m.Sources)
		res.Metrics.TaintSinks = int64(m.Sinks)
		res.Metrics.TaintSanitizers = int64(m.Sanitizers)
		res.Metrics.TaintErrors = int64(m.Errors)
		res.Metrics.TaintWarnings = int64(m.Warnings)
	}
	return diags, m, nil
}

// ---------------------------------------------------------------------------
// Taint state

// taintVal is the taintedness of one value: untainted, or tainted with D/P
// certainty.
type taintVal struct {
	tainted bool
	def     ptset.Def
}

var untainted = taintVal{}

func taintedD() taintVal { return taintVal{tainted: true, def: ptset.D} }

// joinTV joins the taint of two values contributing to one result (binary
// operands): tainted if either is, definite if either definitely is.
func joinTV(a, b taintVal) taintVal {
	if !a.tainted {
		return b
	}
	if !b.tainted {
		return a
	}
	if a.def == ptset.D || b.def == ptset.D {
		return taintedD()
	}
	return taintVal{tainted: true, def: ptset.P}
}

// tstate is the abstract state of the walk: for each abstract location (in
// the naming of the invocation being walked), whether its cell is definitely
// or possibly tainted. Absent means untainted.
type tstate struct {
	t    map[*loc.Location]ptset.Def
	dead bool // unreachable (after break/continue/return)
}

func newState() tstate { return tstate{t: make(map[*loc.Location]ptset.Def)} }

func deadState() tstate { return tstate{dead: true} }

func (s tstate) clone() tstate {
	if s.dead {
		return s
	}
	t := make(map[*loc.Location]ptset.Def, len(s.t))
	for l, d := range s.t {
		t[l] = d
	}
	return tstate{t: t}
}

// joinInto raises the taint of l in m to at least d.
func joinInto(m map[*loc.Location]ptset.Def, l *loc.Location, d ptset.Def) {
	if cur, ok := m[l]; !ok || (cur == ptset.P && d == ptset.D) {
		m[l] = d
	}
}

// mergeState joins two control-flow paths: a cell stays definitely tainted
// only when definitely tainted on both; tainted on one side only is possible.
func mergeState(a, b tstate) tstate {
	if a.dead {
		return b.clone()
	}
	if b.dead {
		return a.clone()
	}
	out := newState()
	for l, da := range a.t {
		if db, ok := b.t[l]; ok && da == ptset.D && db == ptset.D {
			out.t[l] = ptset.D
		} else {
			out.t[l] = ptset.P
		}
	}
	for l := range b.t {
		if _, ok := a.t[l]; !ok {
			out.t[l] = ptset.P
		}
	}
	return out
}

func mergeStates(states []tstate) tstate {
	out := deadState()
	for _, s := range states {
		out = mergeState(out, s)
	}
	return out
}

func equalState(a, b tstate) bool {
	if a.dead != b.dead || len(a.t) != len(b.t) {
		return false
	}
	for l, da := range a.t {
		if db, ok := b.t[l]; !ok || da != db {
			return false
		}
	}
	return true
}

// tflow mirrors the analysis's flow structure: the fall-through state plus
// the states escaping through break, continue and return.
type tflow struct {
	out   tstate
	brks  []tstate
	conts []tstate
	rets  []tstate
}

func (f *tflow) absorbEscapes(g tflow) {
	f.brks = append(f.brks, g.brks...)
	f.conts = append(f.conts, g.conts...)
	f.rets = append(f.rets, g.rets...)
}

// ---------------------------------------------------------------------------
// Verdicts

// vkey identifies one sink site: a statement plus a per-statement slot
// (argument index for call sinks, 100+ordinal for subscript sinks) plus the
// kind, so one exec call with several tainted arguments reports once per
// argument.
type vkey struct {
	b    *simple.Basic
	slot int
	kind Kind
}

// site accumulates per-context verdicts for one sink site.
type site struct {
	pos    token.Pos
	fn     string
	expr   string
	callee string
	nodes  map[*invgraph.Node]*ctxVerdict
	order  []*invgraph.Node
}

// ctxVerdict is one context's judgement, merged over loop revisits: bad when
// any visit saw taint, definite only when every visit saw definite taint.
type ctxVerdict struct {
	bad      bool
	definite bool
	visits   int
}

type walker struct {
	res *pta.Result
	cfg *Config

	verdicts map[vkey]*site
	vorder   []vkey

	sourceStmt map[*simple.Basic]bool
	sanStmt    map[*simple.Basic]bool
	argvSeeded bool
}

// record merges one context visit's judgement of a sink site.
func (w *walker) record(b *simple.Basic, slot int, kind Kind, pos token.Pos,
	fn, expr, callee string, n *invgraph.Node, tv taintVal) {
	k := vkey{b: b, slot: slot, kind: kind}
	s, ok := w.verdicts[k]
	if !ok {
		s = &site{pos: pos, fn: fn, expr: expr, callee: callee,
			nodes: make(map[*invgraph.Node]*ctxVerdict)}
		w.verdicts[k] = s
		w.vorder = append(w.vorder, k)
	}
	v, ok := s.nodes[n]
	if !ok {
		v = &ctxVerdict{definite: true}
		s.nodes[n] = v
		s.order = append(s.order, n)
	}
	v.visits++
	if tv.tainted {
		v.bad = true
	}
	if !tv.tainted || tv.def != ptset.D {
		v.definite = false
	}
}

// report aggregates per-context verdicts into diagnostics: definitely
// tainted in every context is an error, tainted in some context a warning.
func (w *walker) report() []Diag {
	var diags []Diag
	for _, k := range w.vorder {
		s := w.verdicts[k]
		nodes := s.order
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Path() < nodes[j].Path() })
		checked, definite := 0, 0
		anyBad := false
		badCtx := ""
		for _, n := range nodes {
			v := s.nodes[n]
			checked++
			if v.bad {
				anyBad = true
				if badCtx == "" {
					badCtx = n.Path()
				}
				if v.definite {
					definite++
				}
			}
		}
		if !anyBad || checked == 0 {
			continue
		}
		sev := Warning
		if definite == checked {
			sev = Error
			badCtx = nodes[0].Path()
		}
		diags = append(diags, Diag{
			Pos: s.pos, Sev: sev, Kind: k.kind,
			Msg: message(k.kind, s.expr, s.callee, sev),
			Ctx: badCtx, Fn: s.fn, Stmt: k.b,
		})
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Msg < b.Msg
	})
	return diags
}

func message(kind Kind, expr, callee string, sev Severity) string {
	switch kind {
	case TaintedExec:
		if sev == Error {
			return fmt.Sprintf("'%s' passes tainted data to '%s'", expr, callee)
		}
		return fmt.Sprintf("'%s' may pass tainted data to '%s'", expr, callee)
	case TaintedCopy:
		if sev == Error {
			return fmt.Sprintf("'%s' copies tainted data of unbounded length via '%s'", expr, callee)
		}
		return fmt.Sprintf("'%s' may copy tainted data of unbounded length via '%s'", expr, callee)
	case TaintedFormat:
		if sev == Error {
			return fmt.Sprintf("'%s' is a tainted format string for '%s'", expr, callee)
		}
		return fmt.Sprintf("'%s' may be a tainted format string for '%s'", expr, callee)
	case TaintedIndex:
		if sev == Error {
			return fmt.Sprintf("'%s' indexes an array with a tainted value", expr)
		}
		return fmt.Sprintf("'%s' may index an array with a tainted value", expr)
	}
	return fmt.Sprintf("tainted data reaches '%s'", callee)
}

// ---------------------------------------------------------------------------
// Seeding

// seedArgv taints the deepest symbolic pointee chain of each of main's
// pointer parameters — for char **argv the character data 2_argv, which is
// what the user typed. The intermediate pointer cells (1_argv, the vector of
// string addresses) hold addresses, not attacker data, and stay clean.
func (w *walker) seedArgv(st tstate) {
	if _, ok := w.cfg.Sources[ArgvSource]; !ok {
		return
	}
	mainFn := w.res.Prog.Main()
	if mainFn == nil {
		return
	}
	for _, p := range mainFn.Params {
		if p.Type == nil {
			continue
		}
		depth := p.Type.PointerDepth()
		if depth == 0 {
			continue
		}
		sym := w.res.Table.SymLoc(mainFn, fmt.Sprintf("%d_%s", depth, p.Name), nil, nil)
		st.t[sym] = ptset.D
		w.argvSeeded = true
	}
}

// ---------------------------------------------------------------------------
// The walk

// walkNode walks one invocation's body and returns the exit state (the merge
// of the fall-through and every return path). Approximate nodes have no
// walked body: the recursion approximation leaves taint unchanged.
func (w *walker) walkNode(n *invgraph.Node, st tstate) tstate {
	if n.Kind == invgraph.Approximate {
		return st
	}
	f := w.walkStmt(n, n.Fn.Body, st)
	return mergeStates(append(f.rets, f.out))
}

func (w *walker) walkStmt(n *invgraph.Node, s simple.Stmt, st tstate) tflow {
	if st.dead {
		return tflow{out: st}
	}
	switch s := s.(type) {
	case *simple.Basic:
		return tflow{out: w.walkBasic(n, s, st)}

	case *simple.Seq:
		f := tflow{out: st}
		if s == nil {
			return f
		}
		for _, c := range s.List {
			g := w.walkStmt(n, c, f.out)
			f.out = g.out
			f.absorbEscapes(g)
			if f.out.dead {
				break
			}
		}
		return f

	case *simple.If:
		thenF := w.walkStmt(n, s.Then, st)
		elseF := tflow{out: st}
		if s.Else != nil {
			elseF = w.walkStmt(n, s.Else, st)
		}
		out := tflow{out: mergeState(thenF.out, elseF.out)}
		out.absorbEscapes(thenF)
		out.absorbEscapes(elseF)
		return out

	case *simple.While:
		return w.walkLoop(n, nil, s.CondEval, s.Body, nil, false, st)

	case *simple.DoWhile:
		return w.walkLoop(n, nil, s.CondEval, s.Body, nil, true, st)

	case *simple.For:
		return w.walkLoop(n, s.Init, s.CondEval, s.Body, s.Post, false, st)

	case *simple.Switch:
		return w.walkSwitch(n, s, st)

	case *simple.Break:
		return tflow{out: deadState(), brks: []tstate{st}}

	case *simple.Continue:
		return tflow{out: deadState(), conts: []tstate{st}}

	case *simple.Return:
		return tflow{out: deadState(), rets: []tstate{st}}
	}
	return tflow{out: st}
}

// walkLoop runs the loop body to a taint fixed point; doFirst is the
// do-while shape.
func (w *walker) walkLoop(n *invgraph.Node, init, condEval, body, post *simple.Seq, doFirst bool, in tstate) tflow {
	result := tflow{}
	if init != nil {
		f := w.walkStmt(n, init, in)
		in = f.out
		result.rets = append(result.rets, f.rets...)
		if in.dead {
			result.out = in
			return result
		}
	}
	evalCond := func(s tstate) tstate {
		if condEval == nil || s.dead {
			return s
		}
		f := w.walkStmt(n, condEval, s)
		result.rets = append(result.rets, f.rets...)
		return f.out
	}
	var exits []tstate
	cur := in
	if !doFirst {
		cur = evalCond(in)
		exits = append(exits, cur) // zero-iteration exit
	}
	const maxIter = 64
	for iter := 0; ; iter++ {
		f := w.walkStmt(n, body, cur)
		result.rets = append(result.rets, f.rets...)
		exits = append(exits, f.brks...)
		backIn := mergeStates(append(f.conts, f.out))
		if post != nil && !backIn.dead {
			pf := w.walkStmt(n, post, backIn)
			result.rets = append(result.rets, pf.rets...)
			backIn = pf.out
		}
		backIn = evalCond(backIn)
		exits = append(exits, backIn) // exit after this iteration's test
		next := mergeState(cur, backIn)
		if equalState(next, cur) || iter >= maxIter {
			break
		}
		cur = next
	}
	result.out = mergeStates(exits)
	return result
}

func (w *walker) walkSwitch(n *invgraph.Node, s *simple.Switch, in tstate) tflow {
	result := tflow{}
	var exits []tstate
	hasDefault := false
	fall := deadState()
	for _, c := range s.Cases {
		if c.IsDefault {
			hasDefault = true
		}
		f := w.walkStmt(n, c.Body, mergeState(in, fall))
		result.rets = append(result.rets, f.rets...)
		result.conts = append(result.conts, f.conts...)
		exits = append(exits, f.brks...)
		fall = f.out
	}
	exits = append(exits, fall)
	if !hasDefault {
		exits = append(exits, in) // no arm taken
	}
	result.out = mergeStates(exits)
	return result
}

// walkBasic judges b's sinks under the pre-state, applies its taint transfer
// function, and descends into resolved callees.
func (w *walker) walkBasic(n *invgraph.Node, b *simple.Basic, st tstate) tstate {
	in, ok := w.res.Annots.ContextsAt(b)[n]
	if !ok {
		return st // not reached in this context
	}
	w.checkIndexSinks(n, b, in, st)

	switch b.Kind {
	case simple.AsgnCall:
		return w.walkCall(n, b, in, st)
	case simple.AsgnCallInd:
		return w.walkCallees(n, b, in, st)
	case simple.StmtNop:
		return st
	}
	if b.LHS == nil {
		return st
	}
	var tv taintVal
	switch b.Kind {
	case simple.AsgnCopy, simple.AsgnUnary:
		tv = w.operandTaint(b.X, in, st)
	case simple.AsgnBinary:
		tv = joinTV(w.operandTaint(b.X, in, st), w.operandTaint(b.Y, in, st))
	case simple.AsgnAddr, simple.AsgnMalloc:
		tv = untainted // fresh addresses and fresh storage are clean
	}
	out := st.clone()
	w.assignRef(out, b.LHS, in, tv)
	return out
}

// walkCall handles a direct call: sink checks under the pre-state, then the
// sanitizer/defined-body/source/external transfer function.
func (w *walker) walkCall(n *invgraph.Node, b *simple.Basic, in ptset.Set, st tstate) tstate {
	name := b.Callee.Name
	external := w.res.Prog.Lookup(name) == nil

	if external {
		if sink, ok := w.cfg.Sinks[name]; ok {
			w.checkSink(n, b, in, st, name, sink)
		}
	}
	// Sanitizers silence defined functions too: the pragma is a trust
	// annotation, so the body is not walked.
	if w.cfg.Sanitizers[name] {
		return w.applySanitizer(n, b, in, st)
	}
	if !external {
		return w.walkCallees(n, b, in, st)
	}
	if src, ok := w.cfg.Sources[name]; ok {
		return w.applySource(n, b, in, st, src)
	}
	switch name {
	case pta.PthreadCreate, pta.PthreadJoin, pta.PthreadExit,
		pta.PthreadMutexLock, pta.PthreadMutexUnlock,
		pta.PthreadMutexInit, pta.PthreadMutexDestroy:
		return st // thread roots are walked separately, taint-free
	case "free":
		return st
	case "strcpy", "strncpy", "memcpy", "memmove", "strcat", "memset":
		return w.applyCopyExternal(n, b, in, st, name)
	}
	// Unknown external: the result may derive from any argument, never more
	// than possibly.
	if b.LHS != nil {
		tv := untainted
		for _, a := range b.Args {
			tv = joinTV(tv, w.dataTaintOperand(a, in, st))
		}
		if tv.tainted {
			tv.def = ptset.P
		}
		out := st.clone()
		w.assignRef(out, b.LHS, in, tv)
		return out
	}
	return st
}

// walkCallees descends into every resolved (non-thread) callee of this site
// and merges their exit states; an unresolved site leaves taint unchanged.
func (w *walker) walkCallees(n *invgraph.Node, b *simple.Basic, in ptset.Set, st tstate) tstate {
	var outs []tstate
	for _, c := range n.Children {
		if c.Site != b || c.IsThread {
			continue
		}
		outs = append(outs, w.crossCall(n, c, b, in, st))
	}
	if len(outs) == 0 {
		return st
	}
	return mergeStates(outs)
}

// crossCall maps the taint state into the callee's naming, walks the callee,
// and unmaps the exit taint back — the taint analogue of the points-to
// analysis's map/unmap: caller cells visible to the callee travel under
// their callee names (globals as themselves, invisible cells under their
// symbolic names), taint on unmapped cells flows back through the inverse
// translation, and cells invisible to the callee keep their caller taint.
func (w *walker) crossCall(n, c *invgraph.Node, b *simple.Basic, in ptset.Set, st tstate) tstate {
	if c.Kind == invgraph.Approximate {
		return st
	}
	mi, ok := c.MapInfo.(*pta.MapInfo)
	if !ok {
		return st
	}
	callee := c.Fn

	// Map: caller cells under their callee names, weakened when the naming
	// fans out or a symbolic stands for several invisible cells.
	cst := newState()
	for l, d := range st.t {
		names := mi.CalleeNames(w.res, l)
		for _, u := range names {
			nd := d
			if len(names) > 1 || u.Multi() || mi.MultiSym(w.res, u) {
				nd = ptset.P
			}
			joinInto(cst.t, u, nd)
		}
	}
	// Formal parameters receive the actuals' value taint (each formal is a
	// fresh single definite cell, so the copy is strong).
	for i, p := range callee.Params {
		if i >= len(b.Args) {
			break
		}
		tv := w.operandTaint(b.Args[i], in, st)
		if tv.tainted {
			joinInto(cst.t, w.res.Table.VarLoc(p, nil), tv.def)
		}
	}

	ex := w.walkNode(c, cst)
	if ex.dead {
		return deadState() // the callee never returns
	}

	// Unmap: caller cells the callee could see are replaced by the
	// translation of the callee's exit taint; invisible cells survive.
	out := newState()
	for l, d := range st.t {
		if len(mi.CalleeNames(w.res, l)) == 0 {
			out.t[l] = d
		}
	}
	for u, d := range ex.t {
		tr := mi.Translate(w.res, u)
		nd := d
		if len(tr) > 1 || mi.MultiSym(w.res, u) {
			nd = ptset.P
		}
		for _, cu := range tr {
			if cu.Multi() {
				joinInto(out.t, cu, ptset.P)
			} else {
				joinInto(out.t, cu, nd)
			}
		}
	}

	// The return value's taint travels through the retval pseudo-cell.
	if b.LHS != nil {
		tv := untainted
		if callee.RetVal != nil {
			if d, ok := ex.t[w.res.Table.VarLoc(callee.RetVal, nil)]; ok {
				tv = taintVal{tainted: true, def: d}
			}
		}
		w.assignRef(out, b.LHS, in, tv)
	}
	return out
}

// ---------------------------------------------------------------------------
// Transfer functions

// applySource taints the configured buffer pointees definitely (the source
// definitely writes attacker data there when it executes) and the result
// value when the source returns tainted data.
func (w *walker) applySource(n *invgraph.Node, b *simple.Basic, in ptset.Set, st tstate, src Source) tstate {
	out := st.clone()
	w.sourceStmt[b] = true
	apply := func(idx int) {
		if idx >= len(b.Args) {
			return
		}
		ref, ok := b.Args[idx].(*simple.Ref)
		if !ok {
			return
		}
		w.assignLocs(out, w.dataLocs(ref, in), taintedD())
	}
	for _, idx := range src.Bufs {
		apply(idx)
	}
	if src.BufsFrom >= 0 {
		for idx := src.BufsFrom; idx < len(b.Args); idx++ {
			apply(idx)
		}
	}
	if b.LHS != nil {
		tv := untainted
		if src.Ret {
			tv = taintedD()
		}
		w.assignRef(out, b.LHS, in, tv)
	}
	return out
}

// applySanitizer kills the taint of every argument's pointees (and of the
// arguments' own cells when they are direct references) under the strong/
// weak rules, and leaves the result untainted.
func (w *walker) applySanitizer(n *invgraph.Node, b *simple.Basic, in ptset.Set, st tstate) tstate {
	out := st.clone()
	w.sanStmt[b] = true
	for _, a := range b.Args {
		ref, ok := a.(*simple.Ref)
		if !ok {
			continue
		}
		w.assignLocs(out, w.dataLocs(ref, in), untainted)
	}
	if b.LHS != nil {
		w.assignRef(out, b.LHS, in, untainted)
	}
	return out
}

// applyCopyExternal models the data movement of the modeled string/memory
// externals: the source argument's data taint flows into the destination's
// pointees. strcat appends (never clears); memset overwrites with a
// constant (clears).
func (w *walker) applyCopyExternal(n *invgraph.Node, b *simple.Basic, in ptset.Set, st tstate, name string) tstate {
	out := st.clone()
	if len(b.Args) >= 1 {
		if dst, ok := b.Args[0].(*simple.Ref); ok {
			dlocs := w.dataLocs(dst, in)
			switch name {
			case "memset":
				w.assignLocs(out, dlocs, untainted)
			default:
				tv := untainted
				if len(b.Args) >= 2 {
					tv = w.dataTaintOperand(b.Args[1], in, st)
				}
				if name == "strcat" && !tv.tainted {
					break // append of clean data keeps the old contents
				}
				w.assignLocs(out, dlocs, tv)
			}
		}
	}
	if b.LHS != nil {
		// These externals return their destination pointer; the pointer
		// value itself carries no data taint.
		tv := untainted
		if len(b.Args) >= 1 {
			if dst, ok := b.Args[0].(*simple.Ref); ok {
				tv = w.readTaint(dst, in, st)
			}
		}
		w.assignRef(out, b.LHS, in, tv)
	}
	return out
}

// checkSink records per-context verdicts for the configured data arguments
// of a sink call under the pre-state.
func (w *walker) checkSink(n *invgraph.Node, b *simple.Basic, in ptset.Set, st tstate, name string, sink Sink) {
	judge := func(idx int, kind Kind) {
		if idx >= len(b.Args) {
			return
		}
		tv := w.dataTaintOperand(b.Args[idx], in, st)
		expr := b.Args[idx].String()
		pos := b.Pos
		if r, ok := b.Args[idx].(*simple.Ref); ok && r.Pos.IsValid() {
			pos = r.Pos
		}
		w.record(b, idx, kind, pos, n.Fn.Name(), expr, name, n, tv)
	}
	if sink.Format >= 0 {
		judge(sink.Format, TaintedFormat)
	}
	for _, idx := range sink.Args {
		judge(idx, sink.Kind)
	}
	if sink.ArgsFrom >= 0 {
		for idx := sink.ArgsFrom; idx < len(b.Args); idx++ {
			if idx == sink.Format {
				continue
			}
			judge(idx, sink.Kind)
		}
	}
}

// checkIndexSinks records a verdict for every array subscript of b whose
// concrete index operand is a variable reference: a tainted index is an
// attacker-controlled memory access.
func (w *walker) checkIndexSinks(n *invgraph.Node, b *simple.Basic, in ptset.Set, st tstate) {
	slot := 100
	judge := func(r *simple.Ref, sels []simple.Sel) {
		for _, sel := range sels {
			if sel.Kind != simple.SelIndex || sel.Opnd == nil {
				continue
			}
			opRef, ok := sel.Opnd.(*simple.Ref)
			if !ok {
				continue
			}
			tv := w.readTaint(opRef, in, st)
			pos := r.Pos
			if !pos.IsValid() {
				pos = b.Pos
			}
			w.record(b, slot, TaintedIndex, pos, n.Fn.Name(), opRef.String(), "", n, tv)
			slot++
		}
	}
	for _, r := range b.Refs() {
		judge(r, r.Path)
		judge(r, r.DPath)
	}
}

// ---------------------------------------------------------------------------
// Taint evaluation over references

// readTaint is the taint of the value a reference reads: definite only when
// every cell the reference can denote is definitely tainted (the coverage
// invariant lifts per-cell taint to the value), possible when any is.
func (w *walker) readTaint(r *simple.Ref, in ptset.Set, st tstate) taintVal {
	lls := pta.EvalLLocs(w.res, r, in)
	if len(lls) == 0 {
		return untainted
	}
	any, all := false, true
	for _, ll := range lls {
		d, ok := st.t[ll.Loc]
		if ok {
			any = true
		}
		if !ok || d != ptset.D {
			all = false
		}
	}
	switch {
	case any && all:
		return taintedD()
	case any:
		return taintVal{tainted: true, def: ptset.P}
	}
	return untainted
}

// operandTaint is the taint of a simple operand's value; constants are
// clean.
func (w *walker) operandTaint(op simple.Operand, in ptset.Set, st tstate) taintVal {
	r, ok := op.(*simple.Ref)
	if !ok || r == nil {
		return untainted
	}
	return w.readTaint(r, in, st)
}

// dataTaintOperand is the taint of the data an argument hands a callee: the
// value itself, joined with the cells the value points to (a clean char*
// pointing at tainted characters hands over tainted data).
func (w *walker) dataTaintOperand(op simple.Operand, in ptset.Set, st tstate) taintVal {
	r, ok := op.(*simple.Ref)
	if !ok || r == nil {
		return untainted
	}
	tv := w.readTaint(r, in, st)
	rls := w.dataLocs(r, in)
	if len(rls) == 0 {
		return tv
	}
	any, all := false, true
	for _, rl := range rls {
		d, ok := st.t[rl.Loc]
		if ok {
			any = true
		}
		if !ok || d != ptset.D {
			all = false
		}
	}
	switch {
	case any && all:
		return joinTV(tv, taintedD())
	case any:
		return joinTV(tv, taintVal{tainted: true, def: ptset.P})
	}
	return tv
}

// dataLocs is the set of data cells a pointer-valued reference exposes: its
// R-locations minus NULL (no storage) and functions (no data). String
// literals stay in the set — they are (clean) data cells.
func (w *walker) dataLocs(r *simple.Ref, in ptset.Set) []pta.BaseLoc {
	var out []pta.BaseLoc
	for _, rl := range pta.EvalRLocsOfRef(w.res, r, in) {
		if rl.Loc.Kind == loc.Null || rl.Loc.Kind == loc.Func {
			continue
		}
		out = append(out, rl)
	}
	return out
}

// assignRef applies a value's taint to the cells a left-hand side denotes.
func (w *walker) assignRef(st tstate, lhs *simple.Ref, in ptset.Set, tv taintVal) {
	w.assignLocs(st, pta.EvalLLocs(w.res, lhs, in), tv)
}

// assignLocs writes taint into a target cell set with the analysis's own
// strong/weak update rule: one single definite non-multi target is strongly
// updated (set to the value's taint, or cleared); anything weaker only adds
// possible taint, or demotes definite taint to possible on a clean write.
func (w *walker) assignLocs(st tstate, lls []pta.BaseLoc, tv taintVal) {
	if len(lls) == 1 && lls[0].Def == ptset.D && !lls[0].Loc.Multi() && !w.res.Opts.NoDefinite {
		l := lls[0].Loc
		if tv.tainted {
			st.t[l] = tv.def
		} else {
			delete(st.t, l)
		}
		return
	}
	for _, ll := range lls {
		l := ll.Loc
		cur, has := st.t[l]
		if tv.tainted {
			nd := tv.def
			if !has {
				nd = ptset.P // the cell may keep its clean old value
			} else {
				nd = cur.And(tv.def)
			}
			st.t[l] = nd
		} else if has && cur == ptset.D {
			st.t[l] = ptset.P // may have been overwritten with clean data
		}
	}
}

// DemandSeeds returns the demand the taint client places on a points-to
// analysis run in demand mode. The walker applies a taint transfer at
// every reachable statement, reading its per-context points-to annotation
// to resolve pointer stores, loads and sink arguments, so its demand is
// the degenerate all-statements seed; liveness pruning still drops facts
// of dead non-address-taken locals, which no taint transfer can read.
func DemandSeeds(prog *simple.Program) *live.Seeds {
	return live.SeedAllStatements(prog)
}
