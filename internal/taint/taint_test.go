package taint_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cc/parser"
	"repro/internal/obsv"
	"repro/internal/pta"
	"repro/internal/simplify"
	"repro/internal/taint"
	"repro/internal/testutil"
	"repro/pointsto"
)

// TestFixtures is the golden test over examples/taint: every fixture's
// rendered diagnostics are pinned in a .golden file next to it, and every
// _ok twin must be free of error-level diagnostics.
func TestFixtures(t *testing.T) {
	dir := testutil.FixtureDir("taint")
	files := testutil.Fixtures(t, dir)
	if len(files) < 12 {
		t.Fatalf("expected at least 6 fixture pairs in %s, found %d files", dir, len(files))
	}
	for _, file := range files {
		t.Run(file, func(t *testing.T) {
			a := testutil.AnalyzeFile(t, filepath.Join(dir, file))
			diags, err := a.Taint()
			if err != nil {
				t.Fatal(err)
			}
			lines := testutil.Render(diags)
			testutil.GoldenLines(t, filepath.Join(dir, strings.TrimSuffix(file, ".c")+".golden"), lines)
			if strings.HasSuffix(file, "_ok.c") {
				for _, d := range diags {
					if d.Sev == taint.Error {
						t.Errorf("clean twin has an error-level diagnostic: %s", d)
					}
				}
			}
		})
	}
}

// TestMetrics pins the counters of the richest fixture: heap.c seeds one
// source, checks sinks at strcpy and system, and sanitizes nothing.
func TestMetrics(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(testutil.FixtureDir("taint"), "heap.c"))
	if err != nil {
		t.Fatal(err)
	}
	tu, err := parser.Parse("heap.c", string(data))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pta.Analyze(prog, pta.Options{RecordContexts: true})
	if err != nil {
		t.Fatal(err)
	}
	_, m, err := taint.RunWithMetrics(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sources != 1 || m.Sanitizers != 0 {
		t.Errorf("sources=%d sanitizers=%d, want 1 and 0", m.Sources, m.Sanitizers)
	}
	if m.Sinks == 0 {
		t.Error("no sink sites checked")
	}
	if m.Errors != 1 || m.Warnings != 1 {
		t.Errorf("errors=%d warnings=%d, want 1 and 1", m.Errors, m.Warnings)
	}
	if res.Metrics.TaintErrors != 1 || res.Metrics.TaintWarnings != 1 || res.Metrics.TaintSources != 1 {
		t.Errorf("metrics snapshot not filled: taint counters %d/%d/%d",
			res.Metrics.TaintErrors, res.Metrics.TaintWarnings, res.Metrics.TaintSources)
	}
}

// TestSanitizerPragma verifies the comment pragma flips pragma.c's verdict:
// the same program is an error without the pragma and clean with it.
func TestSanitizerPragma(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(testutil.FixtureDir("taint"), "pragma.c"))
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	if got := taint.PragmaSanitizers(src); len(got) != 0 {
		t.Fatalf("pragma.c should carry no pragma, found %v", got)
	}
	withPragma := "/* taint:sanitizes quote */\n" + src
	if got := taint.PragmaSanitizers(withPragma); len(got) != 1 || got[0] != "quote" {
		t.Fatalf("PragmaSanitizers = %v, want [quote]", got)
	}

	a := testutil.AnalyzeSrc(t, "pragma.c", src)
	diags, err := a.Taint()
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for _, d := range diags {
		if d.Sev == taint.Error {
			errs++
		}
	}
	if errs != 1 {
		t.Fatalf("without pragma: %d errors, want 1:\n%s", errs, strings.Join(testutil.Render(diags), "\n"))
	}

	a2 := testutil.AnalyzeSrc(t, "pragma2.c", withPragma)
	diags2, err := a2.Taint()
	if err != nil {
		t.Fatal(err)
	}
	if len(diags2) != 0 {
		t.Fatalf("with pragma: want clean, got:\n%s", strings.Join(testutil.Render(diags2), "\n"))
	}
}

// TestRunRejectsWrongOptions mirrors the check/race precondition tests.
func TestRunRejectsWrongOptions(t *testing.T) {
	tu, err := parser.Parse("opt.c", `int main(void) { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pta.Analyze(prog, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := taint.Run(res, nil); err == nil {
		t.Error("Run accepted a result without RecordContexts")
	}
	res, err = pta.Analyze(prog, pta.Options{RecordContexts: true, ShareContexts: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := taint.Run(res, nil); err == nil {
		t.Error("Run accepted a result with ShareContexts")
	}
}

// TestTaintRerunsAnalysis: the public entry point must work from an analysis
// configured without per-context annotations by re-running internally.
func TestTaintRerunsAnalysis(t *testing.T) {
	a, err := pointsto.AnalyzeSource("re.c", `
int main(int argc, char **argv) {
    system(argv[1]);
    return 0;
}
`, &pointsto.Config{ShareContexts: true})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := a.Taint()
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Kind != taint.TaintedExec || diags[0].Sev != taint.Error {
		t.Fatalf("want one tainted-exec error, got %v", testutil.Render(diags))
	}
}

// TestDeterminism: taint verdicts are bit-identical across worker counts,
// traced and untraced — the taint analogue of the race determinism test.
func TestDeterminism(t *testing.T) {
	files := []string{"direct.c", "heap.c", "fnptr.c", "ctx.c", "index.c"}
	for _, file := range files {
		t.Run(file, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(testutil.FixtureDir("taint"), file))
			if err != nil {
				t.Fatal(err)
			}
			tu, err := parser.Parse(file, string(data))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := simplify.Simplify(tu)
			if err != nil {
				t.Fatal(err)
			}
			var baseDiags []string
			var baseFP string
			for _, workers := range []int{1, 2, 8} {
				for _, traced := range []bool{false, true} {
					opts := pta.Options{Workers: workers, RecordContexts: true}
					if traced {
						opts.Tracer = obsv.NewTracer(0, 0)
					}
					res, err := pta.Analyze(prog, opts)
					if err != nil {
						t.Fatal(err)
					}
					diags, err := taint.Run(res, nil)
					if err != nil {
						t.Fatal(err)
					}
					got := testutil.Render(diags)
					fp := pta.Fingerprint(res)
					if baseFP == "" {
						baseDiags, baseFP = got, fp
						continue
					}
					if fp != baseFP {
						t.Errorf("workers=%d traced=%v: fingerprint differs from workers=1", workers, traced)
					}
					if !reflect.DeepEqual(got, baseDiags) {
						t.Errorf("workers=%d traced=%v: diagnostics differ:\ngot:  %s\nbase: %s",
							workers, traced, strings.Join(got, "\n"), strings.Join(baseDiags, "\n"))
					}
				}
			}
		})
	}
}
