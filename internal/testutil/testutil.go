// Package testutil is the shared golden-fixture harness for the analysis
// clients (check, race, taint): fixture discovery over an examples/
// subdirectory, source-to-Analysis helpers, diagnostic rendering, and golden
// file comparison with the conventional -update flag.
package testutil

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/pointsto"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// FixtureDir resolves an examples/ subdirectory relative to the repo root,
// which for a test binary is two levels above the package directory.
func FixtureDir(parts ...string) string {
	return filepath.Join(append([]string{"..", "..", "examples"}, parts...)...)
}

// Fixtures lists the .c files of a fixture directory, sorted by name.
func Fixtures(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture dir %s: %v", dir, err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".c") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// AnalyzeFile parses and analyzes one C file through the public API.
func AnalyzeFile(t *testing.T, path string) *pointsto.Analysis {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := pointsto.AnalyzeSource(filepath.Base(path), string(data), nil)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return a
}

// AnalyzeSrc analyzes in-memory source through the public API.
func AnalyzeSrc(t *testing.T, name, src string) *pointsto.Analysis {
	t.Helper()
	a, err := pointsto.AnalyzeSource(name, src, nil)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return a
}

// Render stringifies a diagnostic slice, one line per entry.
func Render[D fmt.Stringer](diags []D) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}

// Golden compares got against the golden file at path; with -update the file
// is rewritten instead. A missing golden file fails unless -update is given.
// An empty got is stored as an empty file.
func Golden(t *testing.T, path string, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden %s: %v (run with -update to create)", path, err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", filepath.Base(path), got, want)
	}
}

// GoldenLines is Golden over a line slice, normalizing the trailing newline.
func GoldenLines(t *testing.T, path string, lines []string) {
	t.Helper()
	got := ""
	if len(lines) > 0 {
		got = strings.Join(lines, "\n") + "\n"
	}
	Golden(t, path, got)
}
