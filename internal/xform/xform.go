// Package xform implements the transformations and companion analyses built
// on points-to information that §6.1 of the paper describes: replacing
// indirect references through definitely-known pointers with direct
// references, and computing read/write sets per statement.
package xform

import (
	"fmt"
	"sort"

	"repro/internal/pta"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/simple"
)

// Replacement describes one indirect reference that definite points-to
// information can replace with a direct reference (e.g. *q -> y).
type Replacement struct {
	Stmt   *simple.Basic
	Ref    *simple.Ref
	Target *loc.Location
}

func (r Replacement) String() string {
	return fmt.Sprintf("%s: %s => %s", r.Stmt.Pos, r.Ref, r.Target.Name())
}

// FindReplacements returns all indirect references whose dereferenced
// pointer definitely points to a single, visible, single-location target.
// (References to invisible variables cannot be replaced — the paper's
// footnote 7.)
func FindReplacements(res *pta.Result) []Replacement {
	var out []Replacement
	seen := make(map[*simple.Basic]bool)
	res.Prog.ForEachBasic(func(b *simple.Basic) {
		if seen[b] {
			return
		}
		seen[b] = true
		in, ok := res.Annots.At(b)
		if !ok {
			return
		}
		for _, r := range b.Refs() {
			if !r.Deref {
				continue
			}
			base := pta.EvalBaseLocs(res, r)
			if len(base) != 1 || base[0].Def != ptset.D {
				continue
			}
			var target *loc.Location
			n := 0
			for _, t := range in.Targets(base[0].Loc) {
				if t.Dst.Kind == loc.Null {
					continue
				}
				n++
				if t.Def == ptset.D {
					target = t.Dst
				}
			}
			if n != 1 || target == nil {
				continue
			}
			if target.Kind != loc.Var || target.Multi() {
				continue // invisible, heap or multi-location target
			}
			out = append(out, Replacement{Stmt: b, Ref: r, Target: target})
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Stmt.ID < out[j].Stmt.ID })
	return out
}

// RWSet is the read/write set of one basic statement in terms of abstract
// locations (used to build read/write sets for IR construction, §6.1).
type RWSet struct {
	Stmt  *simple.Basic
	Reads []*loc.Location
	// Writes lists locations possibly written; DefWrites those definitely
	// written (eligible for kill in downstream analyses).
	Writes    []*loc.Location
	DefWrites []*loc.Location
}

// ComputeRWSets derives per-statement read/write sets from the analysis
// annotations. Call statements are skipped (their effects live in the
// callee's sets).
func ComputeRWSets(res *pta.Result) []RWSet {
	var out []RWSet
	seen := make(map[*simple.Basic]bool)
	res.Prog.ForEachBasic(func(b *simple.Basic) {
		if seen[b] || b.Kind == simple.AsgnCall || b.Kind == simple.AsgnCallInd ||
			b.Kind == simple.StmtNop {
			return
		}
		seen[b] = true
		in, ok := res.Annots.At(b)
		if !ok {
			return
		}
		rw := RWSet{Stmt: b}
		if b.LHS != nil {
			for _, ld := range lvalLocs(res, b.LHS, in) {
				rw.Writes = append(rw.Writes, ld.Loc)
				if ld.Def == ptset.D && !ld.Loc.Multi() {
					rw.DefWrites = append(rw.DefWrites, ld.Loc)
				}
			}
		}
		for _, r := range b.Refs() {
			if r == b.LHS {
				continue
			}
			for _, ld := range lvalLocs(res, r, in) {
				rw.Reads = append(rw.Reads, ld.Loc)
			}
		}
		rw.Reads = loc.SortLocs(rw.Reads)
		rw.Writes = loc.SortLocs(rw.Writes)
		rw.DefWrites = loc.SortLocs(rw.DefWrites)
		out = append(out, rw)
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Stmt.ID < out[j].Stmt.ID })
	return out
}

// lvalLocs returns the locations a reference denotes (its L-location set).
func lvalLocs(res *pta.Result, r *simple.Ref, in ptset.Set) []pta.BaseLoc {
	if !r.Deref {
		return pta.EvalBaseLocs(res, r)
	}
	return pta.EvalLLocs(res, r, in)
}
