package xform

import (
	"testing"

	"repro/internal/cc/parser"
	"repro/internal/pta"
	"repro/internal/simplify"
)

func analyze(t *testing.T, src string) *pta.Result {
	t.Helper()
	tu, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	prog, err := simplify.Simplify(tu)
	if err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	res, err := pta.Analyze(prog, pta.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

func TestFindReplacementsDefinite(t *testing.T) {
	res := analyze(t, `
int main() {
	int x, y;
	int *q;
	q = &y;
	x = *q;     /* replaceable: q definitely points to y */
	*q = 3;     /* replaceable */
	return x;
}
`)
	reps := FindReplacements(res)
	if len(reps) != 2 {
		t.Fatalf("found %d replacements, want 2: %v", len(reps), reps)
	}
	for _, r := range reps {
		if r.Target.Name() != "y" {
			t.Errorf("replacement target = %s, want y", r.Target.Name())
		}
	}
}

func TestNoReplacementForPossible(t *testing.T) {
	res := analyze(t, `
int main() {
	int x, y, z, c;
	int *r;
	if (c)
		r = &y;
	else
		r = &z;
	x = *r;
	return x;
}
`)
	if reps := FindReplacements(res); len(reps) != 0 {
		t.Errorf("possible targets must not be replaceable: %v", reps)
	}
}

func TestNoReplacementForInvisible(t *testing.T) {
	// Inside f, q definitely points to the invisible 1_q — footnote 7 of
	// the paper says such references cannot be replaced.
	res := analyze(t, `
int read(int *q) {
	return *q;
}
int main() {
	int x;
	x = read(&x);
	return x;
}
`)
	for _, r := range FindReplacements(res) {
		if r.Stmt.Pos.Line == 3 { // the *q inside read
			t.Errorf("invisible target must not be replaceable: %v", r)
		}
	}
}

func TestNoReplacementForHeap(t *testing.T) {
	res := analyze(t, `
int main() {
	int *p;
	int x;
	p = (int *) malloc(4);
	x = *p;
	return x;
}
`)
	if reps := FindReplacements(res); len(reps) != 0 {
		t.Errorf("heap targets must not be replaceable: %v", reps)
	}
}

func TestRWSets(t *testing.T) {
	res := analyze(t, `
int main() {
	int x, y;
	int *p;
	p = &x;
	*p = y;
	return 0;
}
`)
	sets := ComputeRWSets(res)
	// Find the RW set of the store *p = y.
	var found bool
	for _, rw := range sets {
		if rw.Stmt.LHS != nil && rw.Stmt.LHS.Deref {
			found = true
			if len(rw.Writes) != 1 || rw.Writes[0].Name() != "x" {
				t.Errorf("writes of *p = y: %v, want [x]", rw.Writes)
			}
			if len(rw.DefWrites) != 1 {
				t.Errorf("x is definitely written: %v", rw.DefWrites)
			}
			hasY := false
			for _, r := range rw.Reads {
				if r.Name() == "y" {
					hasY = true
				}
			}
			if !hasY {
				t.Errorf("reads of *p = y should include y: %v", rw.Reads)
			}
		}
	}
	if !found {
		t.Fatal("store statement not found")
	}
}

func TestRWSetsWeakWrite(t *testing.T) {
	res := analyze(t, `
int main() {
	int x, y, c;
	int *p;
	if (c)
		p = &x;
	else
		p = &y;
	*p = 1;
	return 0;
}
`)
	for _, rw := range ComputeRWSets(res) {
		if rw.Stmt.LHS != nil && rw.Stmt.LHS.Deref {
			if len(rw.Writes) != 2 {
				t.Errorf("weak write should cover x and y: %v", rw.Writes)
			}
			if len(rw.DefWrites) != 0 {
				t.Errorf("weak write has no definite writes: %v", rw.DefWrites)
			}
		}
	}
}
