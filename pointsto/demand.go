package pointsto

// Demand-driven mode: Config.Demand switches the engine to the
// liveness-pruned analysis (pta.Options.Demand). The demand — which
// statements need annotations, and which variables need exact facts there
// — is the union of the seeds of the registered DemandClients and the
// statements named by Queries. Exhaustive mode stays the default and is
// the correctness oracle: every fact a demand run reports is bit-identical
// to the exhaustive run's.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/check"
	"repro/internal/pta/live"
	"repro/internal/pta/ptset"
	"repro/internal/race"
	"repro/internal/simple"
	"repro/internal/taint"
)

// Query names a points-to query: the targets of variable Var in the
// points-to set flowing into the statement(s) at Pos. Pos is
// "file:line" or "file:line:col"; Var is a local, parameter or temporary
// of the enclosing function, or a global.
type Query struct {
	Pos string `json:"pos"`
	Var string `json:"var"`
}

// ParseQuery parses the CLI form "file:line[:col]:var".
func ParseQuery(s string) (Query, error) {
	i := strings.LastIndex(s, ":")
	if i <= 0 || i == len(s)-1 {
		return Query{}, fmt.Errorf("pointsto: malformed query %q (want file:line[:col]:var)", s)
	}
	q := Query{Pos: s[:i], Var: s[i+1:]}
	if _, _, _, err := splitPos(q.Pos); err != nil {
		return Query{}, fmt.Errorf("pointsto: malformed query %q: %v", s, err)
	}
	return q, nil
}

// QueryResult is the answer to one Query.
type QueryResult struct {
	Query
	// Targets is the pointed-to locations, sorted by name; NULL omitted.
	Targets []Target `json:"targets"`
	// Err explains an unresolved query ("" on success): unknown position,
	// unknown variable, or statement not covered by the registered demand.
	Err string `json:"err,omitempty"`
}

// DemandConfigError reports a demand-mode configuration the analysis
// rejects rather than silently falling back to an exhaustive run.
type DemandConfigError struct{ Reason string }

func (e *DemandConfigError) Error() string { return "pointsto: " + e.Reason }

// ErrNoDemand is returned when Config.Demand is set but neither Queries
// nor DemandClients registers any demand: the pruned analysis would keep
// nothing, which is never what the caller meant.
var ErrNoDemand = &DemandConfigError{
	Reason: "Demand set but no demand registered (set Queries or DemandClients)",
}

// ClientDemandError is returned when an annotation-reading client (Check,
// Races, Taint) is invoked on a demand-mode analysis whose seeds did not
// include that client. Re-running exhaustively behind the caller's back
// would defeat the point of demand mode, so the mismatch is an error:
// register the client in Config.DemandClients and re-analyze.
type ClientDemandError struct{ Client string }

func (e *ClientDemandError) Error() string {
	return fmt.Sprintf("pointsto: %s needs per-context annotations but the demand-mode analysis was not seeded for it (add %q to Config.DemandClients)",
		e.Client, e.Client)
}

// demandState is what a demand-mode Analysis remembers about its seeds.
type demandState struct {
	clients map[string]bool
	seeds   *live.Seeds
}

// demandSeeds derives the engine seeds for cfg over prog. Returns nil
// seeds when cfg does not request demand mode.
func demandSeeds(prog *simple.Program, cfg *Config) (*demandState, error) {
	if cfg == nil || !cfg.Demand {
		return nil, nil
	}
	if len(cfg.Queries) == 0 && len(cfg.DemandClients) == 0 {
		return nil, ErrNoDemand
	}
	st := &demandState{clients: make(map[string]bool), seeds: live.NewSeeds()}
	for _, c := range cfg.DemandClients {
		switch c {
		case "check":
			st.seeds.Merge(check.DemandSeeds(prog))
		case "race":
			st.seeds.Merge(race.DemandSeeds(prog))
		case "taint":
			st.seeds.Merge(taint.DemandSeeds(prog))
		default:
			return nil, &DemandConfigError{Reason: fmt.Sprintf("unknown demand client %q (want check, race or taint)", c)}
		}
		st.clients[c] = true
	}
	if len(cfg.DemandClients) > 0 && cfg.ShareContexts {
		return nil, &DemandConfigError{
			Reason: "DemandClients need per-context annotations, which ShareContexts cache hits skip; unset ShareContexts",
		}
	}
	for _, q := range cfg.Queries {
		stmts, fn, err := resolvePos(prog, q.Pos)
		if err != nil {
			return nil, &DemandConfigError{Reason: fmt.Sprintf("query %s:%s: %v", q.Pos, q.Var, err)}
		}
		obj := lookupVarIn(prog, fn, q.Var)
		if obj == nil {
			return nil, &DemandConfigError{Reason: fmt.Sprintf("query %s:%s: no variable %q in scope", q.Pos, q.Var, q.Var)}
		}
		// The queried variable is demanded at every statement the position
		// names: a line can span several basics, and the query merges
		// their annotations, so the variable's facts must be exact at each
		// one or the merge would weaken definiteness.
		for _, b := range stmts {
			st.seeds.AddStmtRefs(b)
			st.seeds.Add(b, obj)
		}
	}
	return st, nil
}

// splitPos parses "file:line" or "file:line:col".
func splitPos(pos string) (file string, line, col int, err error) {
	parts := strings.Split(pos, ":")
	if len(parts) < 2 {
		return "", 0, 0, fmt.Errorf("malformed position %q (want file:line[:col])", pos)
	}
	// The column, when present, is the last numeric component; the line
	// the one before it. Everything earlier is the file name.
	if len(parts) >= 3 {
		if c, cerr := strconv.Atoi(parts[len(parts)-1]); cerr == nil {
			if l, lerr := strconv.Atoi(parts[len(parts)-2]); lerr == nil {
				return strings.Join(parts[:len(parts)-2], ":"), l, c, nil
			}
		}
	}
	l, lerr := strconv.Atoi(parts[len(parts)-1])
	if lerr != nil {
		return "", 0, 0, fmt.Errorf("malformed position %q: %v", pos, lerr)
	}
	return strings.Join(parts[:len(parts)-1], ":"), l, 0, nil
}

// resolvePos returns the basic statements at pos and their enclosing
// function ("" for the global initializer). A position with no column
// matches every basic on the line.
func resolvePos(prog *simple.Program, pos string) ([]*simple.Basic, string, error) {
	file, lineNo, col, err := splitPos(pos)
	if err != nil {
		return nil, "", err
	}
	var stmts []*simple.Basic
	fn := ""
	match := func(body *simple.Seq, name string) {
		simple.WalkStmts(body, func(s simple.Stmt) {
			b, ok := s.(*simple.Basic)
			if !ok || b.Pos.Line != lineNo || b.Pos.File != file {
				return
			}
			if col != 0 && b.Pos.Col != col {
				return
			}
			stmts = append(stmts, b)
			fn = name
		})
	}
	match(prog.GlobalInit, "")
	for _, f := range prog.Functions {
		match(f.Body, f.Name())
	}
	if len(stmts) == 0 {
		return nil, "", fmt.Errorf("no statement at %s", pos)
	}
	return stmts, fn, nil
}

// QueryPointsTo returns the points-to targets of variable name in the
// merged points-to set flowing into the statement(s) at pos ("file:line"
// or "file:line:col"). It works in both modes; in demand mode the
// statement must be covered by the registered demand (a Config.Queries
// entry or a client seed), otherwise no annotation was kept for it.
func (a *Analysis) QueryPointsTo(pos, name string) ([]Target, error) {
	stmts, fn, err := resolvePos(a.Program, pos)
	if err != nil {
		return nil, err
	}
	obj := a.lookupVar(fn, name)
	if obj == nil {
		return nil, fmt.Errorf("pointsto: no variable %q in scope at %s", name, pos)
	}
	var merged ptset.Set
	found := false
	for _, b := range stmts {
		// In demand mode the variable's facts must have survived pruning
		// at every statement the position names, or the merged answer
		// could be weaker than the exhaustive one.
		if a.Result.Live != nil && a.Result.Live.Prunable(b, obj) {
			return nil, fmt.Errorf("pointsto: %q not demanded at %s (register the query in Config.Queries)", name, pos)
		}
		in, ok := a.Result.Annots.At(b)
		if !ok {
			continue
		}
		if !found {
			merged, found = in, true
		} else {
			merged = ptset.Merge(merged, in)
		}
	}
	if !found {
		if a.Result.Opts.Demand != nil && !a.Result.Opts.Demand.Seeded(stmts[0]) {
			return nil, fmt.Errorf("pointsto: no annotation at %s: statement not covered by the demand (register it in Config.Queries)", pos)
		}
		return nil, fmt.Errorf("pointsto: no annotation at %s: statement never reached", pos)
	}
	return a.targets(merged, obj), nil
}

// QueryAll answers a batch of queries. Per-query failures are reported in
// QueryResult.Err rather than aborting the batch.
func (a *Analysis) QueryAll(queries []Query) []QueryResult {
	out := make([]QueryResult, len(queries))
	for i, q := range queries {
		out[i].Query = q
		ts, err := a.QueryPointsTo(q.Pos, q.Var)
		if err != nil {
			out[i].Err = err.Error()
			continue
		}
		out[i].Targets = ts
	}
	return out
}
