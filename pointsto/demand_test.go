package pointsto

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

const demandSrc = `
int x, y;
int *gp;
int main() {
    int *p;
    int *q;
    int v;
    p = &x;
    q = &y;
    gp = p;
    v = *p;
    v = v + *q;
    return v;
}
`

func TestQueryPointsTo(t *testing.T) {
	ex, err := AnalyzeSource("q.c", demandSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := AnalyzeSource("q.c", demandSrc, &Config{
		Demand:  true,
		Queries: []Query{{Pos: "q.c:11", Var: "p"}, {Pos: "q.c:12", Var: "q"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{{Pos: "q.c:11", Var: "p"}, {Pos: "q.c:12", Var: "q"}} {
		exT, err := ex.QueryPointsTo(q.Pos, q.Var)
		if err != nil {
			t.Fatalf("exhaustive %v: %v", q, err)
		}
		dmT, err := dm.QueryPointsTo(q.Pos, q.Var)
		if err != nil {
			t.Fatalf("demand %v: %v", q, err)
		}
		if fmt.Sprint(exT) != fmt.Sprint(dmT) {
			t.Errorf("%v: exhaustive %v, demand %v", q, exT, dmT)
		}
		if len(exT) == 0 {
			t.Errorf("%v: no targets", q)
		}
	}
	// Position with explicit column and a batched query.
	res := dm.QueryAll([]Query{{Pos: "q.c:11", Var: "p"}, {Pos: "q.c:99", Var: "p"}, {Pos: "q.c:11", Var: "nosuch"}})
	if res[0].Err != "" || len(res[0].Targets) == 0 {
		t.Errorf("batch q1 = %+v", res[0])
	}
	if res[1].Err == "" {
		t.Errorf("batch q2: expected position error")
	}
	if res[2].Err == "" {
		t.Errorf("batch q3: expected unknown-variable error")
	}
	// An unseeded statement must be reported as uncovered, not answered.
	if _, err := dm.QueryPointsTo("q.c:10", "gp"); err == nil {
		t.Errorf("unseeded statement answered in demand mode")
	}
}

func TestDemandConfigValidation(t *testing.T) {
	if _, err := AnalyzeSource("q.c", demandSrc, &Config{Demand: true}); !errors.Is(err, ErrNoDemand) {
		t.Errorf("no-demand config: got %v, want ErrNoDemand", err)
	}
	_, err := AnalyzeSource("q.c", demandSrc, &Config{Demand: true, DemandClients: []string{"bogus"}})
	var cfgErr *DemandConfigError
	if !errors.As(err, &cfgErr) {
		t.Errorf("unknown client: got %v, want DemandConfigError", err)
	}
	_, err = AnalyzeSource("q.c", demandSrc, &Config{Demand: true, DemandClients: []string{"check"}, ShareContexts: true})
	if !errors.As(err, &cfgErr) {
		t.Errorf("ShareContexts+clients: got %v, want DemandConfigError", err)
	}
	_, err = AnalyzeSource("q.c", demandSrc, &Config{Demand: true, Queries: []Query{{Pos: "nosuch.c:1", Var: "p"}}})
	if !errors.As(err, &cfgErr) {
		t.Errorf("unresolvable query: got %v, want DemandConfigError", err)
	}

	// A client not registered in the demand must be a typed error, never a
	// silent exhaustive re-run.
	a, err := AnalyzeSource("q.c", demandSrc, &Config{Demand: true, DemandClients: []string{"check"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Check(); err != nil {
		t.Errorf("registered client: %v", err)
	}
	_, err = a.Races()
	var cliErr *ClientDemandError
	if !errors.As(err, &cliErr) || cliErr.Client != "race" {
		t.Errorf("unregistered client: got %v, want ClientDemandError{race}", err)
	}
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery("a.c:12:5:ptr")
	if err != nil || q.Pos != "a.c:12:5" || q.Var != "ptr" {
		t.Errorf("ParseQuery = %+v, %v", q, err)
	}
	q, err = ParseQuery("a.c:12:ptr")
	if err != nil || q.Pos != "a.c:12" || q.Var != "ptr" {
		t.Errorf("ParseQuery = %+v, %v", q, err)
	}
	for _, bad := range []string{"", "ptr", "a.c:ptr", "a.c:12:"} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) accepted", bad)
		}
	}
}

// TestDemandClientsMatchExhaustive runs the three clients over every
// example program in both modes and requires identical diagnostics.
func TestDemandClientsMatchExhaustive(t *testing.T) {
	for _, dir := range []string{"check", "race", "taint"} {
		files, err := filepath.Glob(filepath.Join("..", "examples", dir, "*.c"))
		if err != nil || len(files) == 0 {
			t.Fatalf("no examples in %s: %v", dir, err)
		}
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			name := filepath.Base(f)
			ex, err := AnalyzeSource(name, string(src), nil)
			if err != nil {
				t.Fatalf("%s: %v", f, err)
			}
			dm, err := AnalyzeSource(name, string(src), &Config{Demand: true, DemandClients: []string{dir}})
			if err != nil {
				t.Fatalf("%s: demand: %v", f, err)
			}
			exD, dmD := runClient(t, ex, dir), runClient(t, dm, dir)
			if exD != dmD {
				t.Errorf("%s: diagnostics diverge\nexhaustive:\n%s\ndemand:\n%s", f, exD, dmD)
			}
		}
	}
}

func runClient(t *testing.T, a *Analysis, client string) string {
	t.Helper()
	switch client {
	case "check":
		ds, err := a.Check()
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		return fmt.Sprint(ds)
	case "race":
		ds, err := a.Races()
		if err != nil {
			t.Fatalf("race: %v", err)
		}
		return fmt.Sprint(ds)
	case "taint":
		ds, err := a.Taint()
		if err != nil {
			t.Fatalf("taint: %v", err)
		}
		return fmt.Sprint(ds)
	}
	t.Fatalf("unknown client %s", client)
	return ""
}
