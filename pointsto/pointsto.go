// Package pointsto is the public API of the reproduction of Emami, Ghiya &
// Hendren, "Context-Sensitive Interprocedural Points-to Analysis in the
// Presence of Function Pointers" (PLDI 1994).
//
// It wraps the full pipeline — C-subset frontend, SIMPLE simplifier,
// points-to analysis with invocation graphs and function-pointer handling —
// behind a small surface:
//
//	a, err := pointsto.AnalyzeSource("prog.c", src, nil)
//	targets := a.PointsTo("main", "p")   // e.g. [{x D}]
//	a.WriteInvocationGraph(os.Stdout)    // Graphviz DOT
//
// For lower-level access (per-statement annotations, the location table,
// baseline analyses) use the internal packages via the fields of Analysis.
package pointsto

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/alias"
	"repro/internal/cc/ast"
	"repro/internal/cc/parser"
	"repro/internal/check"
	"repro/internal/constprop"
	"repro/internal/deptest"
	"repro/internal/heapconn"
	"repro/internal/modref"
	"repro/internal/obsv"
	"repro/internal/pta"
	"repro/internal/pta/invgraph"
	"repro/internal/pta/loc"
	"repro/internal/pta/ptset"
	"repro/internal/race"
	"repro/internal/simple"
	"repro/internal/simplify"
	"repro/internal/taint"
	"repro/internal/xform"
)

// Config controls an analysis. The zero value (or a nil *Config) is the
// paper's algorithm.
type Config struct {
	// FnPtrStrategy: "precise" (default), "addr-taken" or "all".
	FnPtrStrategy string
	// NoDefinite disables definite relationships and strong updates.
	NoDefinite bool
	// SingleArrayLoc collapses the a_head/a_tail array abstraction.
	SingleArrayLoc bool
	// NoMemo disables IN/OUT memoization on invocation graph nodes.
	NoMemo bool
	// ContextInsensitive merges all calling contexts per function.
	ContextInsensitive bool
	// ShareContexts enables the paper's §6 future-work optimization: a
	// global per-function summary cache that shares invocation-graph
	// subtrees with identical inputs.
	ShareContexts bool
	// Workers bounds the pool evaluating independent invocation subtrees
	// in parallel: 0 means GOMAXPROCS, 1 forces serial. Results are
	// bit-identical for every worker count.
	Workers int
	// Trace records a structured execution trace (invocation-graph node
	// evaluations, map/unmap, basic statements, fixed-point iterations,
	// worker scheduling) retrievable from Analysis.Tracer and exportable
	// with WriteChromeTrace / WriteTraceJSONL. Tracing never changes
	// analysis results.
	Trace bool
	// TraceBuffer bounds the per-shard trace ring in events (0 means the
	// default). On overflow the oldest events are dropped, never blocking
	// the analysis; the drop count is reported in Result.Metrics.
	TraceBuffer int
	// Tracer, when non-nil, is a caller-supplied tracer the run emits its
	// spans into, taking precedence over Trace/TraceBuffer. This is the
	// request-scoped tracing path: a server opens its own span (stamped
	// with the request ID) on the tracer around the analysis, so the flight
	// record and trace exports carry the request identity. Consumed per
	// run, like Metrics and Flight.
	Tracer *obsv.Tracer
	// MaxSteps bounds basic-statement evaluations as a runaway guard
	// (0 means the engine default of 50 million).
	MaxSteps int
	// Metrics, when non-nil, is the live registry the analysis reports
	// through, so an in-flight run can be scraped (obsv.RegisterMetrics /
	// obsv.WritePrometheus). It must be fresh per run: counters accumulate,
	// so a second run through the same registry would double-account. To
	// make reuse safe for callers that pool Configs (pta-server), the
	// Metrics, Flight and Tracer attachments are consume-once — an Analyze
	// call nils them on completion; set them again for the next run.
	Metrics *obsv.Metrics
	// Flight attaches the always-on flight recorder: bounded last-N spans
	// plus periodic progress samples, dumped to FlightDump when the run
	// panics, exceeds MaxSteps, or stalls. Consumed per run, like Metrics.
	Flight *obsv.FlightRecorder
	// FlightDump receives flight-record and stall dumps (default stderr).
	FlightDump io.Writer
	// StallWindow arms the stall watchdog: after this long without step
	// progress the engine emits a warning, dumps goroutine stacks and the
	// flight record, and — with StallKill — aborts the run.
	StallWindow time.Duration
	// StallKill makes a detected stall abort the analysis with an error.
	StallKill bool
	// Demand switches the engine to demand-driven, liveness-pruned mode:
	// the fixpoint only maintains points-to facts for pointers that are
	// live and demanded, pruned at statement granularity, and records
	// annotations only at seeded statements. The demand is the union of
	// the DemandClients' seeds and the Queries. Every fact a demand run
	// reports is bit-identical to the exhaustive run's; setting Demand
	// with neither Queries nor DemandClients is an error (ErrNoDemand).
	Demand bool
	// Queries pre-registers points-to queries; in demand mode they seed
	// the statements they name. Answer them with Analysis.QueryAll or
	// QueryPointsTo (both also work on exhaustive analyses).
	Queries []Query
	// DemandClients names the annotation-reading clients whose seeds the
	// demand must include: "check", "race", "taint". Invoking a client
	// not registered here on a demand-mode analysis is a typed error
	// (ClientDemandError), never a silent exhaustive re-run.
	DemandClients []string
}

func (c *Config) options() (pta.Options, error) {
	var o pta.Options
	if c == nil {
		return o, nil
	}
	switch c.FnPtrStrategy {
	case "", "precise":
		o.FnPtr = pta.Precise
	case "addr-taken":
		o.FnPtr = pta.AddrTaken
	case "all":
		o.FnPtr = pta.AllFuncs
	default:
		return o, fmt.Errorf("pointsto: unknown function-pointer strategy %q", c.FnPtrStrategy)
	}
	o.NoDefinite = c.NoDefinite
	o.SingleArrayLoc = c.SingleArrayLoc
	o.NoMemo = c.NoMemo
	o.ContextInsensitive = c.ContextInsensitive
	o.ShareContexts = c.ShareContexts
	o.Workers = c.Workers
	if c.Tracer != nil {
		o.Tracer = c.Tracer
	} else if c.Trace {
		o.Tracer = obsv.NewTracer(0, c.TraceBuffer)
	}
	o.MaxSteps = c.MaxSteps
	o.Metrics = c.Metrics
	o.Flight = c.Flight
	o.FlightDump = c.FlightDump
	o.StallWindow = c.StallWindow
	o.StallKill = c.StallKill
	return o, nil
}

// Target is one points-to relationship target.
type Target struct {
	Name     string
	Definite bool
}

func (t Target) String() string {
	d := "P"
	if t.Definite {
		d = "D"
	}
	return t.Name + ":" + d
}

// Analysis is a completed points-to analysis of one program.
type Analysis struct {
	// Result exposes the full analysis result for advanced use.
	Result *pta.Result
	// Program is the simplified (SIMPLE) program.
	Program *simple.Program
	// Tracer holds the execution trace when Config.Trace was set, nil
	// otherwise.
	Tracer *obsv.Tracer
	// Source is the C source text when the analysis came in through
	// AnalyzeSource, "" otherwise. Taint() scans it for sanitizer pragmas.
	Source string

	// demand remembers the registered demand when the analysis ran in
	// demand mode (nil for exhaustive analyses).
	demand *demandState
}

// Metrics returns the analysis metrics snapshot (never nil).
func (a *Analysis) Metrics() *obsv.MetricsSnapshot { return a.Result.Metrics }

// WriteChromeTrace exports the execution trace in Chrome trace_event JSON
// form, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. The
// analysis must have been run with Config.Trace.
func (a *Analysis) WriteChromeTrace(w io.Writer) error {
	if a.Tracer == nil {
		return fmt.Errorf("pointsto: analysis was not traced (set Config.Trace)")
	}
	return obsv.WriteChromeTrace(w, a.Tracer)
}

// WriteTraceJSONL exports the execution trace as a JSON-lines stream, one
// event per line. The analysis must have been run with Config.Trace.
func (a *Analysis) WriteTraceJSONL(w io.Writer) error {
	if a.Tracer == nil {
		return fmt.Errorf("pointsto: analysis was not traced (set Config.Trace)")
	}
	return obsv.WriteJSONL(w, a.Tracer)
}

// AnalyzeSource parses, simplifies and analyzes C source text.
func AnalyzeSource(filename, src string, cfg *Config) (*Analysis, error) {
	tu, err := parser.Parse(filename, src)
	if err != nil {
		return nil, err
	}
	a, err := AnalyzeUnit(tu, cfg)
	if err != nil {
		return nil, err
	}
	a.Source = src
	return a, nil
}

// AnalyzeUnit analyzes an already-parsed translation unit.
func AnalyzeUnit(tu *ast.TranslationUnit, cfg *Config) (*Analysis, error) {
	prog, err := simplify.Simplify(tu)
	if err != nil {
		return nil, err
	}
	return AnalyzeProgram(prog, cfg)
}

// AnalyzeProgram analyzes a SIMPLE program.
func AnalyzeProgram(prog *simple.Program, cfg *Config) (*Analysis, error) {
	opts, err := cfg.options()
	if err != nil {
		return nil, err
	}
	demand, err := demandSeeds(prog, cfg)
	if err != nil {
		return nil, err
	}
	if demand != nil {
		opts.Demand = demand.seeds
		// The clients' error/warning splits read per-context annotations;
		// demand mode records them only at the seeded statements.
		if len(demand.clients) > 0 {
			opts.RecordContexts = true
		}
	}
	// The observability attachments are consume-once: nil them out before
	// the run so a pooled Config reused for a later Analyze cannot report
	// into a registry that already accumulated this run (double accounting).
	// The run itself holds them through opts; results keep the snapshot.
	if cfg != nil {
		cfg.Metrics, cfg.Flight, cfg.Tracer = nil, nil, nil
	}
	res, err := pta.Analyze(prog, opts)
	if err != nil {
		return nil, err
	}
	return &Analysis{Result: res, Program: prog, Tracer: opts.Tracer, demand: demand}, nil
}

// lookupVar finds a variable: fn=="" searches globals only.
func (a *Analysis) lookupVar(fn, name string) *ast.Object {
	return lookupVarIn(a.Program, fn, name)
}

func lookupVarIn(prog *simple.Program, fn, name string) *ast.Object {
	if fn != "" {
		if f := prog.Lookup(fn); f != nil {
			for _, p := range f.Params {
				if p.Name == name {
					return p
				}
			}
			for _, l := range f.Locals {
				if l.Name == name {
					return l
				}
			}
		}
	}
	for _, g := range prog.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// PointsTo returns the targets of variable name (a local or parameter of
// function fn, or a global when fn is "") in the points-to set at the exit
// of main. NULL targets are omitted; targets are sorted by name.
func (a *Analysis) PointsTo(fn, name string) []Target {
	obj := a.lookupVar(fn, name)
	if obj == nil {
		return nil
	}
	return a.targets(a.Result.MainOut, obj)
}

func (a *Analysis) targets(s ptset.Set, obj *ast.Object) []Target {
	l := a.Result.Table.VarLoc(obj, nil)
	var out []Target
	for _, t := range s.Targets(l) {
		if t.Dst.Kind == loc.Null {
			continue
		}
		out = append(out, Target{Name: t.Dst.Name(), Definite: bool(t.Def)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PointsToString formats PointsTo as "a:D b:P ...".
func (a *Analysis) PointsToString(fn, name string) string {
	ts := a.PointsTo(fn, name)
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

// CallTargets returns the functions an indirect call through the given
// function pointer can invoke, according to the invocation graph built
// during the analysis.
func (a *Analysis) CallTargets(fnPtrVar string) []string {
	seen := make(map[string]bool)
	a.Result.Graph.Walk(func(n *invgraph.Node) {
		if n.Site != nil && n.Site.Kind == simple.AsgnCallInd &&
			n.Site.FnPtr.Name == fnPtrVar {
			seen[n.Fn.Name()] = true
		}
	})
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// InvocationGraphStats returns the Table 6 measurements.
func (a *Analysis) InvocationGraphStats() invgraph.Stats {
	return a.Result.Graph.ComputeStats()
}

// WriteInvocationGraph emits the invocation graph in Graphviz DOT form.
func (a *Analysis) WriteInvocationGraph(w io.Writer) {
	a.Result.Graph.WriteDot(w)
}

// AliasPairs derives the alias pairs implied by the points-to set at main's
// exit by transitive closure up to depth levels of dereference (§7.1).
func (a *Analysis) AliasPairs(depth int) []alias.Pair {
	return alias.FromPointsTo(a.Result.MainOut, depth)
}

// Replacements returns the indirect references that definite points-to
// information can replace with direct references (§6.1).
func (a *Analysis) Replacements() []xform.Replacement {
	return xform.FindReplacements(a.Result)
}

// ConstantPropagation runs the generalized constant propagation client over
// the analysis, using interprocedural MOD sets at call sites (§6.1).
func (a *Analysis) ConstantPropagation() *constprop.Result {
	return constprop.RunWithMod(a.Result, modref.Compute(a.Result))
}

// ModRef computes interprocedural MOD/REF side-effect sets over the
// invocation graph (the read/write-set client of §6.1).
func (a *Analysis) ModRef() *modref.Result {
	return modref.Compute(a.Result)
}

// HeapConnections runs the companion connection analysis for heap-directed
// pointers (the conclusions' reference [16]).
func (a *Analysis) HeapConnections() *heapconn.Result {
	return heapconn.Run(a.Result)
}

// Dependences runs array dependence testing over the program's counted
// loops, using points-to resolution and head/tail alignment (§6.1, [28]).
func (a *Analysis) Dependences() *deptest.Result {
	return deptest.Run(a.Result)
}

// Check runs the context-sensitive memory-safety checker (NULL dereference,
// uninitialized dereference, use-after-free, double free, dangling stack
// pointers) over the program. The checker needs per-context annotations, so
// if this analysis was run without them (or with ShareContexts, whose cache
// hits skip the per-context re-analysis) the points-to analysis is re-run
// internally with the required options; the re-run does not disturb Result.
func (a *Analysis) Check() ([]check.Diag, error) {
	res, err := a.contextResult("check")
	if err != nil {
		return nil, err
	}
	return check.Run(res)
}

// Races runs the context-sensitive lockset-based data-race detector over
// the program: pthread_create entries become concurrent thread roots, and
// accesses to thread-shared locations are checked for lockset-disjoint
// conflicting pairs. Like Check, the detector needs per-context annotations,
// so an analysis run without them (or with ShareContexts) is re-run
// internally with the required options; the re-run does not disturb Result.
func (a *Analysis) Races() ([]race.Diag, error) {
	res, err := a.contextResult("race")
	if err != nil {
		return nil, err
	}
	return race.Run(res, modref.Compute(res))
}

// Taint runs the context-sensitive taint-propagation client with the default
// source/sink/sanitizer tables, extended with any "taint:sanitizes" pragmas
// found in the source text. Like Check and Races, the client needs
// per-context annotations, so an analysis run without them (or with
// ShareContexts) is re-run internally; the re-run does not disturb Result.
func (a *Analysis) Taint() ([]taint.Diag, error) {
	cfg := taint.DefaultConfig()
	if a.Source != "" {
		cfg.AddSanitizers(taint.PragmaSanitizers(a.Source)...)
	}
	return a.TaintWith(cfg)
}

// TaintWith is Taint with caller-supplied source/sink/sanitizer tables (nil
// means the defaults, without pragma scanning).
func (a *Analysis) TaintWith(cfg *taint.Config) ([]taint.Diag, error) {
	res, err := a.contextResult("taint")
	if err != nil {
		return nil, err
	}
	return taint.Run(res, cfg)
}

// contextResult returns a Result carrying per-context annotations for the
// named client, re-running the analysis when this one was run without
// them. A demand-mode analysis is never silently re-run exhaustively: the
// client must have been registered in Config.DemandClients, in which case
// the demand result already carries the annotations it needs.
func (a *Analysis) contextResult(client string) (*pta.Result, error) {
	res := a.Result
	if a.demand != nil {
		if !a.demand.clients[client] {
			return nil, &ClientDemandError{Client: client}
		}
		return res, nil
	}
	if !res.Annots.ContextsEnabled() || res.Opts.ShareContexts {
		opts := res.Opts
		opts.ShareContexts = false
		opts.RecordContexts = true
		// The re-run is an implementation detail: it must not accumulate
		// into the caller's live registry or rebind their flight recorder.
		opts.Metrics = nil
		opts.Flight = nil
		opts.StallWindow = 0
		var err error
		res, err = pta.Analyze(a.Program, opts)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Diagnostics returns non-fatal analysis diagnostics.
func (a *Analysis) Diagnostics() []string { return a.Result.Diags }

// WriteSimple pretty-prints the simplified program.
func (a *Analysis) WriteSimple(w io.Writer) { simple.Fprint(w, a.Program) }
