package pointsto

import (
	"io"
	"strings"
	"testing"

	"repro/internal/obsv"
)

const figure6 = `
int a, b, c;
int *pa, *pb, *pc;
int (*fp)();
int foo();
int bar();
int main() {
	int cond;
	pc = &c;
	if (cond)
		fp = foo;
	else
		fp = bar;
	fp();
	return 0;
}
int foo() {
	int cond;
	pa = &a;
	if (cond)
		fp();
	return 0;
}
int bar() {
	pb = &b;
	return 0;
}
`

func TestAnalyzeSourceAPI(t *testing.T) {
	a, err := AnalyzeSource("fig6.c", figure6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.PointsToString("", "fp"); got != "bar:P foo:P" {
		t.Errorf("fp -> %q, want bar:P foo:P", got)
	}
	if got := a.PointsToString("", "pc"); got != "c:D" {
		t.Errorf("pc -> %q, want c:D", got)
	}
	targets := a.CallTargets("fp")
	if len(targets) != 2 || targets[0] != "bar" || targets[1] != "foo" {
		t.Errorf("CallTargets = %v, want [bar foo]", targets)
	}
	st := a.InvocationGraphStats()
	if st.Nodes != 4 || st.Recursive != 1 || st.Approximate != 1 {
		t.Errorf("IG stats = %+v, want 4 nodes, R=1, A=1", st)
	}
}

func TestConfigStrategies(t *testing.T) {
	for _, strat := range []string{"precise", "addr-taken", "all", ""} {
		if _, err := AnalyzeSource("fig6.c", figure6, &Config{FnPtrStrategy: strat}); err != nil {
			t.Errorf("strategy %q failed: %v", strat, err)
		}
	}
	if _, err := AnalyzeSource("fig6.c", figure6, &Config{FnPtrStrategy: "bogus"}); err == nil {
		t.Error("unknown strategy should error")
	}
}

func TestWriteOutputs(t *testing.T) {
	a, err := AnalyzeSource("fig6.c", figure6, nil)
	if err != nil {
		t.Fatal(err)
	}
	var dot strings.Builder
	a.WriteInvocationGraph(&dot)
	if !strings.Contains(dot.String(), "digraph invocation") {
		t.Error("DOT output malformed")
	}
	var sim strings.Builder
	a.WriteSimple(&sim)
	if !strings.Contains(sim.String(), "fp = &foo") {
		t.Errorf("SIMPLE output should show fp = &foo:\n%s", sim.String())
	}
}

func TestParseErrorSurface(t *testing.T) {
	if _, err := AnalyzeSource("bad.c", "int main( { return 0; }", nil); err == nil {
		t.Error("syntax error should be reported")
	}
}

func TestAliasAndReplacements(t *testing.T) {
	a, err := AnalyzeSource("t.c", `
int main() {
	int x, y;
	int *q;
	q = &y;
	x = *q;
	return x;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	pairs := a.AliasPairs(2)
	if len(pairs) == 0 {
		t.Error("alias pairs expected")
	}
	reps := a.Replacements()
	if len(reps) != 1 {
		t.Fatalf("replacements = %v, want 1", reps)
	}
	if reps[0].Target.Name() != "y" {
		t.Errorf("replacement target = %s, want y", reps[0].Target.Name())
	}
}

func TestPointsToUnknownVariable(t *testing.T) {
	a, err := AnalyzeSource("t.c", "int main() { return 0; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.PointsTo("main", "nosuch"); got != nil {
		t.Errorf("unknown variable should yield nil, got %v", got)
	}
}

func TestContextInsensitiveConfig(t *testing.T) {
	// Context sensitivity matters for state communicated through globals:
	// the merged-context ablation analyzes f once against the union of
	// gin's bindings, so both r1 and r2 see both targets. (Note that
	// parameter-passed contexts stay precise even under the ablation,
	// because symbolic names re-specialize at each unmap — the global
	// channel is where one summary per function actually loses.)
	src := `
int x, y;
int *gin, *gout;
int *r1, *r2;
void f(void) { gout = gin; }
int main() {
	gin = &x;
	f();
	r1 = gout;
	gin = &y;
	f();
	r2 = gout;
	return 0;
}
`
	precise, err := AnalyzeSource("t.c", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := AnalyzeSource("t.c", src, &Config{ContextInsensitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := precise.PointsToString("", "r1"); got != "x:D" {
		t.Errorf("precise r1 -> %q, want x:D", got)
	}
	if got := precise.PointsToString("", "r2"); got != "y:D" {
		t.Errorf("precise r2 -> %q, want y:D", got)
	}
	if got := merged.PointsToString("", "r1"); !strings.Contains(got, "y") {
		t.Errorf("context-insensitive r1 -> %q, should include y (merged contexts)", got)
	}
}

func TestClientAnalysisAccessors(t *testing.T) {
	a, err := AnalyzeSource("t.c", `
struct n { struct n *next; };
int g;
void bump(void) { g = g + 1; }
int main() {
	struct n *p;
	int i;
	int arr[4];
	p = (struct n *) malloc(8);
	g = 1;
	bump();
	for (i = 0; i < 4; i++)
		arr[i] = i;
	return arr[0];
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cp := a.ConstantPropagation(); len(cp.Constants) == 0 {
		t.Error("constant propagation found nothing")
	}
	if mr := a.ModRef(); mr == nil {
		t.Error("modref nil")
	}
	if hc := a.HeapConnections(); len(hc.Funcs) == 0 {
		t.Error("heap connections empty")
	}
	if dp := a.Dependences(); len(dp.Loops) == 0 {
		t.Error("no loops analyzed")
	}
}

// TestConfigReuseIndependentSnapshots is the regression test for the
// consume-once observability attachments: a server reuses Configs from a
// pool, so two sequential Analyze calls sharing one Config must produce
// independent, correctly-totaled snapshots — not a second snapshot that
// double-counts the first run's steps.
func TestConfigReuseIndependentSnapshots(t *testing.T) {
	baseline, err := AnalyzeSource("fig6.c", figure6, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := baseline.Metrics().Steps
	if wantSteps == 0 {
		t.Fatal("baseline run recorded no steps")
	}

	cfg := &Config{}
	runWith := func() *Analysis {
		// Fresh per-run attachments, the way the server's config pool
		// installs them before each request.
		cfg.Metrics = obsv.NewMetrics()
		cfg.Flight = obsv.NewFlightRecorder(0, 0)
		cfg.FlightDump = io.Discard
		a, err := AnalyzeSource("fig6.c", figure6, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1 := runWith()
	if cfg.Metrics != nil || cfg.Flight != nil || cfg.Tracer != nil {
		t.Fatal("Analyze did not consume the observability attachments")
	}
	a2 := runWith()
	if got := a1.Metrics().Steps; got != wantSteps {
		t.Errorf("first run steps = %d, want %d", got, wantSteps)
	}
	if got := a2.Metrics().Steps; got != wantSteps {
		t.Errorf("second run steps = %d, want %d (double accounting?)", got, wantSteps)
	}

	// A reused Config whose attachments were consumed but never re-set must
	// still produce a correct private snapshot.
	a3, err := AnalyzeSource("fig6.c", figure6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := a3.Metrics().Steps; got != wantSteps {
		t.Errorf("third run (no attachments) steps = %d, want %d", got, wantSteps)
	}
}

// TestConfigExternalTracer checks the caller-supplied tracer path: spans
// the caller opens around the run (e.g. a request-ID span) share the ring
// with the analysis's own spans.
func TestConfigExternalTracer(t *testing.T) {
	tr := obsv.NewTracer(1, 512)
	sp := tr.Begin(0, obsv.CatPhase, "request", "req-abc123")
	cfg := &Config{Tracer: tr}
	a, err := AnalyzeSource("fig6.c", figure6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp.End()
	if a.Tracer != tr {
		t.Fatal("Analysis.Tracer is not the supplied tracer")
	}
	var haveReq, haveAnalysis bool
	for _, e := range tr.Events() {
		if e.Name == "request" && e.Detail == "req-abc123" {
			haveReq = true
		}
		if e.Name == "analysis" {
			haveAnalysis = true
		}
	}
	if !haveReq || !haveAnalysis {
		t.Errorf("tracer missing spans: request=%v analysis=%v", haveReq, haveAnalysis)
	}
}
